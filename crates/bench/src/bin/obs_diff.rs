//! `obs_diff` — run-diff profiler: attribute the delta between two runs
//! to pipeline phases.
//!
//! Usage: `obs_diff <baseline> <current> [--top N]`
//!
//! Each input is either a **profile JSON** (written by
//! `cms-bench profile --profile-json`) or an **exported journal**
//! (JSONL snapshot, drop-count header optional); both inputs must be
//! the same kind. The diff is phase-attributed and sorted by absolute
//! regression, so when `bench_gate` flags a slowdown this tool says
//! *which phase* paid for it:
//!
//! * profiles: per-label **self** wall-time deltas (the span labels are
//!   the phases: `ground`, `reground`, `solve`, per-rule children, ...)
//!   plus inclusive deltas and call-count drift;
//! * journals: per-phase wall time aggregated from the typed events
//!   (`chase`, `ground`, `reground`, `solve/local`, `solve/consensus`)
//!   plus every numeric counter the events carry (iterations, restarts,
//!   splice/reuse counts, degradation rungs, faults, ring drops).
//!
//! Exit code 0 on success (the tool explains; `bench_gate` gates),
//! 1 on unreadable or mismatched inputs.

use cms_obs::{Event, JournalSnapshot, Profile};
use std::collections::BTreeMap;
use std::process::ExitCode;

/// One named quantity of a run, in comparable units.
type Table = BTreeMap<String, f64>;

fn load(path: &str) -> Result<(Option<Profile>, Option<JournalSnapshot>), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if let Ok(profile) = Profile::parse(&text) {
        return Ok((Some(profile), None));
    }
    match JournalSnapshot::parse(&text) {
        Ok(journal) => Ok((None, Some(journal))),
        Err(e) => Err(format!(
            "{path}: neither a profile JSON nor a journal export ({e})"
        )),
    }
}

/// Self/inclusive wall and call counts per label.
fn profile_tables(p: &Profile) -> (Table, Table, Table) {
    let mut self_ms = Table::new();
    let mut incl_ms = Table::new();
    let mut calls = Table::new();
    for e in &p.entries {
        self_ms.insert(e.label.clone(), e.wall_self_ns as f64 / 1e6);
        incl_ms.insert(e.label.clone(), e.wall_inclusive_ns as f64 / 1e6);
        calls.insert(e.label.clone(), e.count as f64);
    }
    (self_ms, incl_ms, calls)
}

/// Phase wall-time and counter tables aggregated from a journal.
fn journal_tables(j: &JournalSnapshot) -> (Table, Table) {
    let mut wall_ms = Table::new();
    let mut counters = Table::new();
    let add = |t: &mut Table, key: &str, v: f64| *t.entry(key.to_owned()).or_insert(0.0) += v;
    for r in &j.records {
        add(&mut counters, &format!("events.{}", r.event.kind()), 1.0);
        match &r.event {
            Event::Chase {
                firings,
                tuples_emitted,
                wall_ns,
                ..
            } => {
                add(&mut wall_ms, "chase", *wall_ns as f64 / 1e6);
                add(&mut counters, "chase.firings", *firings as f64);
                add(
                    &mut counters,
                    "chase.tuples_emitted",
                    *tuples_emitted as f64,
                );
            }
            Event::Ground { counters: c, .. } | Event::Reground { counters: c, .. } => {
                let phase = r.event.kind();
                add(&mut wall_ms, phase, c.wall_ns as f64 / 1e6);
                add(
                    &mut counters,
                    &format!("{phase}.substitutions"),
                    c.substitutions as f64,
                );
                add(
                    &mut counters,
                    &format!("{phase}.potentials"),
                    c.potentials as f64,
                );
                add(
                    &mut counters,
                    &format!("{phase}.terms_reused"),
                    c.terms_reused as f64,
                );
                add(
                    &mut counters,
                    &format!("{phase}.terms_recomputed"),
                    c.terms_recomputed as f64,
                );
                add(
                    &mut counters,
                    &format!("{phase}.entries_coalesced"),
                    c.entries_coalesced as f64,
                );
            }
            Event::Solve {
                iterations,
                restarts,
                local_ns,
                consensus_ns,
                ..
            } => {
                add(
                    &mut wall_ms,
                    "solve",
                    (*local_ns + *consensus_ns) as f64 / 1e6,
                );
                add(&mut wall_ms, "solve/local", *local_ns as f64 / 1e6);
                add(&mut wall_ms, "solve/consensus", *consensus_ns as f64 / 1e6);
                add(&mut counters, "solve.iterations", *iterations as f64);
                add(&mut counters, "solve.restarts", *restarts as f64);
            }
            Event::Degradation(rung) => {
                add(
                    &mut counters,
                    &format!("degradation.rung{}", rung.rung()),
                    1.0,
                );
            }
            Event::Fault { fault } => {
                add(&mut counters, &format!("fault.{fault}"), 1.0);
            }
        }
    }
    counters.insert(
        "journal.events_dropped".to_owned(),
        j.header.events_dropped as f64,
    );
    (wall_ms, counters)
}

/// Rows of `(key, baseline, current)` for every key present in either
/// table, sorted by absolute delta, largest first.
fn diff_rows(base: &Table, cur: &Table) -> Vec<(String, f64, f64)> {
    let mut keys: Vec<&String> = base.keys().chain(cur.keys()).collect();
    keys.sort();
    keys.dedup();
    let mut rows: Vec<(String, f64, f64)> = keys
        .into_iter()
        .map(|k| {
            (
                k.clone(),
                base.get(k).copied().unwrap_or(0.0),
                cur.get(k).copied().unwrap_or(0.0),
            )
        })
        .filter(|(_, b, c)| b != c)
        .collect();
    rows.sort_by(|a, b| {
        let da = (a.2 - a.1).abs();
        let db = (b.2 - b.1).abs();
        db.partial_cmp(&da).unwrap_or(std::cmp::Ordering::Equal)
    });
    rows
}

fn print_diff(title: &str, unit: &str, rows: &[(String, f64, f64)], top: usize) {
    if rows.is_empty() {
        println!("{title}: no differences");
        return;
    }
    println!("{title} (sorted by |Δ|):");
    println!(
        "  {:<36} {:>14} {:>14} {:>12} {:>9}",
        "phase/key",
        format!("baseline {unit}"),
        format!("current {unit}"),
        format!("Δ {unit}"),
        "Δ%"
    );
    let shown = if top == 0 {
        rows.len()
    } else {
        top.min(rows.len())
    };
    for (key, base, cur) in &rows[..shown] {
        let delta = cur - base;
        let pct = if *base != 0.0 {
            format!("{:+.1}%", delta / base * 100.0)
        } else {
            "new".to_owned()
        };
        println!("  {key:<36} {base:>14.3} {cur:>14.3} {delta:>+12.3} {pct:>9}");
    }
    if rows.len() > shown {
        println!("  ... {} more rows", rows.len() - shown);
    }
}

fn run() -> Result<(), String> {
    let mut paths: Vec<String> = Vec::new();
    let mut top = 0usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--top" => {
                top = args
                    .next()
                    .ok_or("--top needs a value")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            other => paths.push(other.to_owned()),
        }
    }
    let [base_path, cur_path] = paths.as_slice() else {
        return Err("usage: obs_diff <baseline> <current> [--top N]".into());
    };

    match (load(base_path)?, load(cur_path)?) {
        ((Some(base), _), (Some(cur), _)) => {
            println!("obs_diff: {base_path} vs {cur_path} (profiles)\n");
            let (b_self, b_incl, b_calls) = profile_tables(&base);
            let (c_self, c_incl, c_calls) = profile_tables(&cur);
            print_diff("self wall time", "ms", &diff_rows(&b_self, &c_self), top);
            println!();
            print_diff(
                "inclusive wall time",
                "ms",
                &diff_rows(&b_incl, &c_incl),
                top,
            );
            println!();
            print_diff("call counts", "calls", &diff_rows(&b_calls, &c_calls), top);
            for (name, p) in [(base_path, &base), (cur_path, &cur)] {
                if p.spans_dropped > 0 {
                    println!(
                        "\nnote: {name} lost {} spans to the ring — its numbers undercount",
                        p.spans_dropped
                    );
                }
            }
        }
        ((_, Some(base)), (_, Some(cur))) => {
            println!("obs_diff: {base_path} vs {cur_path} (journals)\n");
            let (b_wall, b_counters) = journal_tables(&base);
            let (c_wall, c_counters) = journal_tables(&cur);
            print_diff("phase wall time", "ms", &diff_rows(&b_wall, &c_wall), top);
            println!();
            print_diff("counters", "", &diff_rows(&b_counters, &c_counters), top);
        }
        _ => {
            return Err(format!(
                "cannot diff a profile against a journal ({base_path} vs {cur_path}); \
                 export both files from the same tool"
            ));
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("obs_diff: {e}");
            ExitCode::FAILURE
        }
    }
}

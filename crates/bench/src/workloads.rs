//! Standard workloads and aggregation used across experiments.

use cms_ibench::{generate, Scenario, ScenarioConfig};
use cms_select::{
    evaluate_scenario, FixedSelection, Greedy, IndependentBaseline, LocalSearch, ObjectiveWeights,
    PslCollective, Selector,
};
use std::time::Duration;

/// The standard selector line-up of the experiment tables (gold oracle and
/// all-candidates rows are added per scenario since they need its shape).
pub fn standard_selectors() -> Vec<Box<dyn Selector>> {
    vec![
        Box::new(IndependentBaseline),
        Box::new(Greedy),
        Box::new(LocalSearch::default()),
        Box::new(PslCollective::default()),
    ]
}

/// Metrics averaged over seeds for one (config point, selector) pair.
#[derive(Clone, Debug)]
pub struct AveragedRow {
    /// Selector name.
    pub selector: String,
    /// Mean mapping-level precision.
    pub map_p: f64,
    /// Mean mapping-level recall.
    pub map_r: f64,
    /// Mean mapping-level F1.
    pub map_f1: f64,
    /// Mean data-level F1.
    pub data_f1: f64,
    /// Mean objective value of the selection.
    pub objective: f64,
    /// Mean objective of the gold mapping (reference).
    pub gold_objective: f64,
    /// Mean wall time (model build + selection).
    pub wall: Duration,
    /// Mean size of the selected mapping.
    pub selected: f64,
}

/// Run each selector over the scenarios and average the metrics. Also
/// appends `gold-oracle` and `all-candidates` reference rows when
/// `with_references` is set.
pub fn average_outcomes(
    scenarios: &[Scenario],
    selectors: &[Box<dyn Selector>],
    weights: &ObjectiveWeights,
    with_references: bool,
) -> Vec<AveragedRow> {
    let mut rows: Vec<AveragedRow> = Vec::new();
    let run = |selector_for: &dyn Fn(&Scenario) -> Box<dyn Selector>| {
        let n = scenarios.len() as f64;
        let mut acc = AveragedRow {
            selector: String::new(),
            map_p: 0.0,
            map_r: 0.0,
            map_f1: 0.0,
            data_f1: 0.0,
            objective: 0.0,
            gold_objective: 0.0,
            wall: Duration::ZERO,
            selected: 0.0,
        };
        for s in scenarios {
            let selector = selector_for(s);
            let o = evaluate_scenario(s, selector.as_ref(), weights)
                .expect("experiment selector failed");
            acc.selector = o.selector.clone();
            acc.map_p += o.mapping.precision / n;
            acc.map_r += o.mapping.recall / n;
            acc.map_f1 += o.mapping.f1 / n;
            acc.data_f1 += o.data.f1 / n;
            acc.objective += o.selection.objective / n;
            acc.gold_objective += o.gold_objective / n;
            acc.wall += o.wall / scenarios.len() as u32;
            acc.selected += o.selection.selected.len() as f64 / n;
        }
        acc
    };

    if with_references {
        rows.push(run(&|s: &Scenario| {
            Box::new(FixedSelection::new("gold-oracle", s.gold.clone()))
        }));
        rows.push(run(&|s: &Scenario| {
            Box::new(FixedSelection::all(s.candidates.len()))
        }));
    }
    for selector in selectors {
        // Rebuild per scenario is unnecessary for stateless selectors; we
        // close over the shared reference instead.
        let boxed: &dyn Selector = selector.as_ref();
        rows.push(run(&|_s: &Scenario| clone_selector(boxed)));
    }
    rows
}

/// Clone a standard selector by name (selectors are cheap value types; the
/// trait itself is not `Clone`-able behind `dyn`).
fn clone_selector(s: &dyn Selector) -> Box<dyn Selector> {
    match s.name() {
        "independent" => Box::new(IndependentBaseline),
        "greedy" => Box::new(Greedy),
        "local-search" => Box::new(LocalSearch::default()),
        "psl-collective" => Box::new(PslCollective::default()),
        other => panic!("unknown selector {other:?} in standard line-up"),
    }
}

/// Generate `seeds` scenarios from a base config, varying only the seed.
pub fn seeded_scenarios(base: &ScenarioConfig, seeds: &[u64]) -> Vec<Scenario> {
    seeds
        .iter()
        .map(|&seed| {
            generate(&ScenarioConfig {
                seed,
                ..base.clone()
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_ibench::NoiseConfig;

    #[test]
    fn averaging_runs_the_standard_lineup() {
        let base = ScenarioConfig {
            rows_per_relation: 8,
            noise: NoiseConfig::uniform(25.0),
            ..ScenarioConfig::all_primitives(1)
        };
        let scenarios = seeded_scenarios(&base, &[1, 2]);
        let rows = average_outcomes(
            &scenarios,
            &standard_selectors(),
            &ObjectiveWeights::unweighted(),
            true,
        );
        assert_eq!(rows.len(), 6); // 2 references + 4 selectors
        let gold = &rows[0];
        assert_eq!(gold.selector, "gold-oracle");
        assert!((gold.map_f1 - 1.0).abs() < 1e-12);
        for r in &rows {
            assert!(r.map_f1 >= 0.0 && r.map_f1 <= 1.0);
            assert!(r.data_f1 >= 0.0 && r.data_f1 <= 1.0);
        }
    }
}

//! `cms-bench` — experiment harness shared by the `experiments` binary and
//! the criterion benches: markdown table rendering and standard workloads.

pub mod tables;
pub mod workloads;

pub use tables::{f1, f3, Table};
pub use workloads::{average_outcomes, seeded_scenarios, standard_selectors, AveragedRow};

//! Criterion bench: raw consensus-ADMM solve times on synthetic HL-MRFs of
//! controlled size — isolates the inference engine from grounding.

use cms_psl::{AdmmConfig, AdmmSolver, GroundConstraint, GroundPotential, LinExpr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// A chain-structured HL-MRF: n variables, upward pressure at one end,
/// soft implications along the chain, a few hard caps.
fn chain_problem(n: usize) -> (Vec<GroundPotential>, Vec<GroundConstraint>) {
    let mut potentials = Vec::new();
    let mut constraints = Vec::new();
    let lin = |terms: &[(usize, f64)], constant: f64| {
        let mut e = LinExpr::constant(constant);
        for &(v, coef) in terms {
            e.add_term(v, coef);
        }
        e.normalize();
        e
    };
    potentials.push(GroundPotential {
        expr: lin(&[(0, -1.0)], 1.0),
        weight: 2.0,
        squared: false,
        origin: String::new(),
    });
    for v in 0..n - 1 {
        potentials.push(GroundPotential {
            expr: lin(&[(v, 1.0), (v + 1, -1.0)], 0.0),
            weight: 1.0,
            squared: false,
            origin: String::new(),
        });
    }
    for v in (0..n).step_by(16) {
        constraints.push(GroundConstraint {
            expr: lin(&[(v, 1.0)], -0.9),
            kind: cms_psl::ConstraintKind::LeqZero,
            origin: String::new(),
        });
    }
    (potentials, constraints)
}

fn bench_admm(c: &mut Criterion) {
    let mut group = c.benchmark_group("admm");
    group.sample_size(20);
    for n in [128usize, 512, 2048] {
        let (potentials, constraints) = chain_problem(n);
        let solver = AdmmSolver::new(&potentials, &constraints, n);
        group.bench_with_input(BenchmarkId::new("serial", n), &n, |b, _| {
            b.iter(|| {
                solver.solve(&AdmmConfig {
                    threads: 1,
                    ..AdmmConfig::default()
                })
            });
        });
        group.bench_with_input(BenchmarkId::new("threads4", n), &n, |b, _| {
            b.iter(|| {
                solver.solve(&AdmmConfig {
                    threads: 4,
                    ..AdmmConfig::default()
                })
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_admm);
criterion_main!(benches);

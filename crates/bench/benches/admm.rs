//! Criterion bench: consensus-ADMM solve cost on `all_primitives(4)`-scale
//! ground programs — isolates the inference engine from grounding and
//! breaks the iteration into its **local** and **consensus** phases.
//!
//! Three solve variants run a fixed iteration budget (tolerances zeroed so
//! every variant pays exactly the same number of iterations):
//!
//! * `solve-reference` — a faithful reimplementation of the seed solver's
//!   iteration (per-term `Vec` copies, a fresh `sums` allocation and three
//!   separate sweeps per consensus step) timed per phase;
//! * `solve-serial` — the sharded solver at `threads = 1`;
//! * `solve-threads4` — the sharded solver at `threads = 4` (bit-identical
//!   results; wall-clock speedup shows up on multi-core hosts).
//!
//! Beyond the criterion timings, the bench emits extra JSON lines in the
//! same format for the phase breakdown (`consensus-*`, `local-*`, per
//! iteration) and for the warm-start iteration counts over a 10-flip
//! reground sequence (`warm-consensus-iters` vs `warm-dual-iters` vs
//! `cold-iters` — counts, not nanoseconds). All lines are gated against
//! `BENCH_admm_baseline.json` by `bench_gate` in CI.

use cms_ibench::{generate, NoiseConfig, ScenarioConfig};
use cms_psl::{AdmmConfig, ConstraintKind, GroundAtom, GroundProgram, LinExpr, Program};
use cms_select::{build_eval_program, CoverageModel, EvalPreds, ObjectiveWeights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Instant;

/// `cargo test` runs bench targets with `--test`: shrink everything.
fn test_mode() -> bool {
    std::env::args().any(|a| a == "--test" || a == "--quick")
}

fn scenario_program(invocations: usize, rows: usize) -> (Program, EvalPreds, CoverageModel) {
    let config = ScenarioConfig {
        rows_per_relation: rows,
        noise: NoiseConfig::uniform(25.0),
        seed: 3,
        ..ScenarioConfig::all_primitives(invocations)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let weights = ObjectiveWeights::unweighted();
    let (program, preds) = build_eval_program(&model, &weights, &[]);
    (program, preds, model)
}

/// Fixed-iteration config: a *negative* absolute tolerance makes the
/// convergence test unsatisfiable (this program hits an exact fixed point
/// within a handful of iterations, so even zero tolerances would stop
/// early), forcing exactly `iters` iterations — timing differences are
/// per-iteration cost, not convergence luck.
fn fixed_cfg(threads: usize, iters: usize) -> AdmmConfig {
    AdmmConfig {
        threads,
        parallel_threshold: 0,
        eps_abs: -1.0,
        eps_rel: 0.0,
        max_iterations: iters,
        ..AdmmConfig::default()
    }
}

/// Emit one machine-readable line in the criterion-shim format so
/// `bench_gate` can pick it up alongside the real criterion output.
fn emit(group: &str, id: &str, samples: &[f64]) {
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
    println!("bench: {group}/{id} ... {mean:.0} ns/iter (min {min:.0})");
    println!("{{\"bench\":\"{group}/{id}\",\"mean_ns\":{mean:.1},\"min_ns\":{min:.1}}}");
}

// ---------------------------------------------------------------------------
// Reference iteration: the seed solver's data layout and three-sweep
// consensus, kept here so the fused sharded step has a measurable baseline
// even on single-core hosts.
// ---------------------------------------------------------------------------

enum RefKind {
    Potential { weight: f64, squared: bool },
    Constraint { equality: bool },
}

struct RefTerm {
    vars: Vec<usize>,
    coefs: Vec<f64>,
    constant: f64,
    coef_norm_sq: f64,
    kind: RefKind,
    y: Vec<f64>,
    u: Vec<f64>,
}

struct RefSolver {
    terms: Vec<RefTerm>,
    counts: Vec<usize>,
    z: Vec<f64>,
}

impl RefSolver {
    fn new(ground: &GroundProgram) -> RefSolver {
        let n = ground.num_vars();
        let mut terms: Vec<RefTerm> = Vec::new();
        let push = |terms: &mut Vec<RefTerm>, expr: &LinExpr, kind: RefKind| {
            terms.push(RefTerm {
                vars: expr.terms.iter().map(|&(v, _)| v).collect(),
                coefs: expr.terms.iter().map(|&(_, c)| c).collect(),
                constant: expr.constant,
                coef_norm_sq: expr.coef_norm_sq(),
                kind,
                y: vec![0.5; expr.terms.len()],
                u: vec![0.0; expr.terms.len()],
            });
        };
        for p in &ground.potentials {
            push(
                &mut terms,
                &p.expr,
                RefKind::Potential {
                    weight: p.weight,
                    squared: p.squared,
                },
            );
        }
        for c in &ground.constraints {
            push(
                &mut terms,
                &c.expr,
                RefKind::Constraint {
                    equality: c.kind == ConstraintKind::EqZero,
                },
            );
        }
        let mut counts = vec![0usize; n];
        for t in &terms {
            for &v in &t.vars {
                counts[v] += 1;
            }
        }
        RefSolver {
            terms,
            counts,
            z: vec![0.5; n],
        }
    }

    /// One seed-style iteration; returns (local_ns, consensus_ns).
    fn iterate(&mut self, rho: f64) -> (f64, f64) {
        let t0 = Instant::now();
        for t in &mut self.terms {
            for (i, &v) in t.vars.iter().enumerate() {
                t.y[i] = self.z[v] - t.u[i];
            }
            let s = t.constant
                + t.coefs
                    .iter()
                    .zip(t.y.iter())
                    .map(|(c, v)| c * v)
                    .sum::<f64>();
            let factor = match t.kind {
                RefKind::Constraint { equality } => {
                    if (equality || s > 0.0) && t.coef_norm_sq > 0.0 {
                        s / t.coef_norm_sq
                    } else {
                        0.0
                    }
                }
                RefKind::Potential { weight, squared } => {
                    if s <= 0.0 {
                        0.0
                    } else if squared {
                        2.0 * weight * s / (rho + 2.0 * weight * t.coef_norm_sq)
                    } else {
                        let s_after = s - (weight / rho) * t.coef_norm_sq;
                        if s_after >= 0.0 {
                            weight / rho
                        } else if t.coef_norm_sq > 0.0 {
                            s / t.coef_norm_sq
                        } else {
                            0.0
                        }
                    }
                }
            };
            if factor != 0.0 {
                for (y, c) in t.y.iter_mut().zip(t.coefs.iter()) {
                    *y -= factor * c;
                }
            }
        }
        let t1 = Instant::now();
        // Seed consensus: fresh sums allocation + rebuild of z + separate
        // dual/residual sweep.
        let n = self.z.len();
        let z_old = std::mem::take(&mut self.z);
        let mut sums = vec![0.0f64; n];
        for t in &self.terms {
            for (i, &v) in t.vars.iter().enumerate() {
                sums[v] += t.y[i] + t.u[i];
            }
        }
        self.z = (0..n)
            .map(|v| {
                if self.counts[v] == 0 {
                    z_old[v]
                } else {
                    (sums[v] / self.counts[v] as f64).clamp(0.0, 1.0)
                }
            })
            .collect();
        let mut primal_sq = 0.0f64;
        let mut y_norm_sq = 0.0f64;
        let mut z_norm_sq = 0.0f64;
        for t in &mut self.terms {
            for (i, &v) in t.vars.iter().enumerate() {
                let diff = t.y[i] - self.z[v];
                t.u[i] += diff;
                primal_sq += diff * diff;
                y_norm_sq += t.y[i] * t.y[i];
                z_norm_sq += self.z[v] * self.z[v];
            }
        }
        let mut dual_sq = 0.0f64;
        for (v, old) in z_old.iter().enumerate().take(n) {
            let d = self.z[v] - old;
            dual_sq += self.counts[v] as f64 * d * d;
        }
        std::hint::black_box((primal_sq, y_norm_sq, z_norm_sq, dual_sq));
        let t2 = Instant::now();
        ((t1 - t0).as_nanos() as f64, (t2 - t1).as_nanos() as f64)
    }
}

fn bench_admm(c: &mut Criterion) {
    let quick = test_mode();
    let (rows, iters, runs) = if quick { (6, 5, 1) } else { (40, 60, 5) };
    let (mut program, preds, model) = scenario_program(4, rows);
    let ground = program.ground().expect("eval program grounds");
    let _ = program.db.take_delta();
    eprintln!(
        "admm bench: ap4 rows={} -> {} vars, {} potentials, {} constraints",
        rows,
        ground.num_vars(),
        ground.potentials.len(),
        ground.constraints.len()
    );

    let mut group = c.benchmark_group("admm");
    group.sample_size(10);
    // Fixed-iteration whole-solve timings: reference vs sharded serial vs
    // sharded 4-thread (identical arithmetic, identical results).
    group.bench_with_input(BenchmarkId::new("solve-reference", "ap4"), &(), |b, ()| {
        b.iter(|| {
            let mut rs = RefSolver::new(&ground);
            for _ in 0..iters {
                rs.iterate(1.0);
            }
            std::hint::black_box(rs.z[0])
        });
    });
    group.bench_with_input(BenchmarkId::new("solve-serial", "ap4"), &(), |b, ()| {
        b.iter(|| std::hint::black_box(ground.solve(&fixed_cfg(1, iters)).admm.iterations));
    });
    group.bench_with_input(BenchmarkId::new("solve-threads4", "ap4"), &(), |b, ()| {
        b.iter(|| std::hint::black_box(ground.solve(&fixed_cfg(4, iters)).admm.iterations));
    });
    group.finish();

    // Phase breakdown, per iteration: the fused sharded consensus pass vs
    // the seed's three-sweep consensus, plus the thread-scaling line.
    let mut ref_local = Vec::new();
    let mut ref_consensus = Vec::new();
    for _ in 0..runs {
        let mut rs = RefSolver::new(&ground);
        let (mut l, mut cns) = (0.0, 0.0);
        for _ in 0..iters {
            let (a, b) = rs.iterate(1.0);
            l += a;
            cns += b;
        }
        ref_local.push(l / iters as f64);
        ref_consensus.push(cns / iters as f64);
    }
    emit("admm", "local-reference/ap4", &ref_local);
    emit("admm", "consensus-reference/ap4", &ref_consensus);
    for (id, threads) in [("serial", 1usize), ("threads4", 4)] {
        let mut local = Vec::new();
        let mut consensus = Vec::new();
        for _ in 0..runs {
            let sol = ground.solve(&fixed_cfg(threads, iters)).admm;
            local.push(sol.local_time.as_nanos() as f64 / sol.iterations as f64);
            consensus.push(sol.consensus_time.as_nanos() as f64 / sol.iterations as f64);
        }
        emit("admm", &format!("local-{id}/ap4"), &local);
        emit("admm", &format!("consensus-{id}/ap4"), &consensus);
    }

    // Warm-start iteration counts over a flip/reground sequence: cold
    // solves vs consensus-only warm starts vs consensus+dual warm starts.
    // These lines carry *iteration counts* (deterministic and
    // machine-independent), not nanoseconds.
    let admm = AdmmConfig {
        threads: 1,
        parallel_threshold: usize::MAX,
        ..AdmmConfig::default()
    };
    let mut ground = ground;
    let (cold0, mut duals) = ground.solve_warm_dual(&admm, &[], None);
    let mut values_consensus = cold0.admm.values.clone();
    let mut values_dual = cold0.admm.values;
    let mut cold_iters = 0usize;
    let mut warm_consensus_iters = 0usize;
    let mut warm_dual_iters = 0usize;
    let flips = if quick { 2 } else { 10 };
    for step in 0..flips {
        let c = (step * 7 + 3) % model.num_candidates;
        let on = step % 3 != 2;
        program.db.observe(
            GroundAtom::from_strs(preds.in_map, &[&format!("c{c}")]),
            f64::from(u8::from(on)),
        );
        let delta = program.db.take_delta();
        if delta.is_empty() {
            continue;
        }
        ground = program.reground_owned(ground, &delta).expect("regrounds");
        cold_iters += ground.solve(&admm).admm.iterations;
        let warm = ground.solve_warm(&admm, &values_consensus);
        warm_consensus_iters += warm.admm.iterations;
        values_consensus.clone_from(&warm.admm.values);
        let carried = ground.carry_duals(&duals).expect("reuse map present");
        let (resumed, next) = ground.solve_warm_dual(&admm, &values_dual, Some(&carried));
        warm_dual_iters += resumed.admm.iterations;
        values_dual.clone_from(&resumed.admm.values);
        duals = next;
    }
    emit("admm", "cold-iters/ap4", &[cold_iters as f64]);
    emit(
        "admm",
        "warm-consensus-iters/ap4",
        &[warm_consensus_iters as f64],
    );
    emit("admm", "warm-dual-iters/ap4", &[warm_dual_iters as f64]);
}

criterion_group!(benches, bench_admm);
criterion_main!(benches);

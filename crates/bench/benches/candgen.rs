//! Criterion bench: Clio-style candidate generation over growing schema
//! pairs and correspondence sets.

use cms_candgen::{generate_candidates, CandGenConfig};
use cms_ibench::{generate, NoiseConfig, ScenarioConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_candgen(c: &mut Criterion) {
    let mut group = c.benchmark_group("candgen");
    group.sample_size(20);
    for invocations in [1usize, 4, 8] {
        let config = ScenarioConfig {
            rows_per_relation: 5, // data size is irrelevant here
            noise: NoiseConfig {
                pi_corresp: 100.0,
                ..NoiseConfig::clean()
            },
            seed: 3,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        group.bench_with_input(
            BenchmarkId::new("generate", scenario.correspondences.len()),
            &invocations,
            |b, _| {
                b.iter(|| {
                    generate_candidates(
                        std::hint::black_box(&scenario.source_schema),
                        std::hint::black_box(&scenario.target_schema),
                        std::hint::black_box(&scenario.correspondences),
                        &CandGenConfig::default(),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_candgen);
criterion_main!(benches);

//! Criterion bench: coverage-model construction + PSL program grounding —
//! the two "compilation" stages between a scenario and MAP inference.
//!
//! Besides the end-to-end `coverage-model` and `program+admm` benches,
//! this file times the grounding engines head-to-head on the declarative
//! program (whose `error-link` rule is a genuine two-literal join):
//! `ground-plan/N` runs the plan-compiled, index-probing engine
//! (`Program::ground`) and `ground-naive/N` the retained nested-loop
//! reference (`Program::ground_naive`). The committed
//! `BENCH_grounding_baseline.json` snapshot records both and their ratio.

use cms_ibench::{generate, NoiseConfig, ScenarioConfig};
use cms_select::{CoverageModel, ObjectiveWeights, PslCollective};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding");
    group.sample_size(20);
    for invocations in [1usize, 2, 4] {
        let config = ScenarioConfig {
            rows_per_relation: 20,
            noise: NoiseConfig::uniform(25.0),
            seed: 3,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        group.bench_with_input(
            BenchmarkId::new("coverage-model", scenario.candidates.len()),
            &invocations,
            |b, _| {
                b.iter(|| {
                    CoverageModel::build(
                        std::hint::black_box(&scenario.source),
                        std::hint::black_box(&scenario.target),
                        std::hint::black_box(&scenario.candidates),
                    )
                });
            },
        );
        let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
        let psl = PslCollective::default();
        group.bench_with_input(
            BenchmarkId::new("program+admm", scenario.candidates.len()),
            &invocations,
            |b, _| {
                b.iter(|| {
                    psl.infer(
                        std::hint::black_box(&model),
                        &ObjectiveWeights::unweighted(),
                    )
                });
            },
        );
        // Grounding engines head-to-head on the declarative rule program.
        let (program, _) = psl.build_declarative_program(&model, &ObjectiveWeights::unweighted());
        group.bench_with_input(
            BenchmarkId::new("ground-plan", invocations),
            &invocations,
            |b, _| {
                b.iter(|| std::hint::black_box(&program).ground().expect("grounds"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ground-naive", invocations),
            &invocations,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(&program)
                        .ground_naive()
                        .expect("grounds")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grounding);
criterion_main!(benches);

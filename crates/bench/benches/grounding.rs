//! Criterion bench: coverage-model construction + PSL program grounding —
//! the two "compilation" stages between a scenario and MAP inference.

use cms_ibench::{generate, NoiseConfig, ScenarioConfig};
use cms_select::{CoverageModel, ObjectiveWeights, PslCollective};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_grounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("grounding");
    group.sample_size(20);
    for invocations in [1usize, 2, 4] {
        let config = ScenarioConfig {
            rows_per_relation: 20,
            noise: NoiseConfig::uniform(25.0),
            seed: 3,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        group.bench_with_input(
            BenchmarkId::new("coverage-model", scenario.candidates.len()),
            &invocations,
            |b, _| {
                b.iter(|| {
                    CoverageModel::build(
                        std::hint::black_box(&scenario.source),
                        std::hint::black_box(&scenario.target),
                        std::hint::black_box(&scenario.candidates),
                    )
                });
            },
        );
        let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
        let psl = PslCollective::default();
        group.bench_with_input(
            BenchmarkId::new("program+admm", scenario.candidates.len()),
            &invocations,
            |b, _| {
                b.iter(|| psl.infer(std::hint::black_box(&model), &ObjectiveWeights::unweighted()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_grounding);
criterion_main!(benches);

//! Criterion bench: end-to-end selection (EX6's time axis) — every
//! selector on a fixed noisy scenario.

use cms_ibench::{generate, NoiseConfig, ScenarioConfig};
use cms_select::{
    BranchBound, CoverageModel, Greedy, IndependentBaseline, LocalSearch, ObjectiveWeights,
    PslCollective, Selector,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_selection(c: &mut Criterion) {
    let config = ScenarioConfig {
        rows_per_relation: 20,
        noise: NoiseConfig::uniform(25.0),
        seed: 9,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let weights = ObjectiveWeights::unweighted();

    let mut group = c.benchmark_group("selection");
    group.sample_size(20);
    let selectors: Vec<Box<dyn Selector>> = vec![
        Box::new(IndependentBaseline),
        Box::new(Greedy),
        Box::new(LocalSearch::default()),
        Box::new(BranchBound::default()),
        Box::new(PslCollective::default()),
    ];
    for selector in &selectors {
        group.bench_function(selector.name(), |b| {
            b.iter(|| selector.select(std::hint::black_box(&model), &weights));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);

//! Criterion bench: end-to-end selection (EX6's time axis) — every
//! selector on a fixed noisy scenario.

use cms_ibench::{generate, NoiseConfig, ScenarioConfig};
use cms_select::{
    BranchBound, CoverageModel, Greedy, IndependentBaseline, LocalSearch, ObjectiveWeights,
    PslCollective, Selector,
};
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_selection(c: &mut Criterion) {
    let config = ScenarioConfig {
        rows_per_relation: 20,
        noise: NoiseConfig::uniform(25.0),
        seed: 9,
        ..ScenarioConfig::all_primitives(1)
    };
    let scenario = generate(&config);
    let model = CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates);
    let weights = ObjectiveWeights::unweighted();

    let mut group = c.benchmark_group("selection");
    group.sample_size(20);
    // The two local-search variants are benched under distinct ids: the
    // untracked one times the pure discrete flip search (comparable to
    // pre-delta numbers), the default additionally pays the per-flip
    // reground + warm-ADMM relaxation mirror.
    let selectors: Vec<(&str, Box<dyn Selector>)> = vec![
        ("independent", Box::new(IndependentBaseline)),
        ("greedy", Box::new(Greedy)),
        (
            "local-search",
            Box::new(LocalSearch {
                track_relaxation: false,
                ..LocalSearch::default()
            }),
        ),
        ("local-search+relax", Box::new(LocalSearch::default())),
        ("branch-bound", Box::new(BranchBound::default())),
        ("psl-collective", Box::new(PslCollective::default())),
    ];
    for (label, selector) in &selectors {
        group.bench_function(*label, |b| {
            b.iter(|| selector.select(std::hint::black_box(&model), &weights));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_selection);
criterion_main!(benches);

//! Criterion bench: chase throughput (canonical universal solutions).
//!
//! Feeds EX6's cost model: the per-candidate chase dominates coverage-model
//! construction, which in turn dominates everything but ADMM at scale.

use cms_ibench::{generate, ScenarioConfig};
use cms_tgd::chase;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase");
    group.sample_size(20);
    for invocations in [1usize, 2, 4] {
        let config = ScenarioConfig {
            rows_per_relation: 50,
            seed: 3,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        let gold: Vec<_> = scenario.gold_tgds().into_iter().cloned().collect();
        group.throughput(Throughput::Elements(scenario.source.total_len() as u64));
        group.bench_with_input(
            BenchmarkId::new("gold-mapping", 7 * invocations),
            &invocations,
            |b, _| {
                b.iter(|| {
                    chase(
                        std::hint::black_box(&scenario.source),
                        std::hint::black_box(&gold),
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chase);
criterion_main!(benches);

//! Criterion bench: chase throughput (canonical universal solutions).
//!
//! Feeds EX6's cost model: the per-candidate chase dominates coverage-model
//! construction, which in turn dominates everything but ADMM at scale.
//!
//! Per `all_primitives` size:
//!
//! * `gold-mapping` — the merged chase of the gold tgds (the exchange
//!   step), naive engine, rows_per_relation = 50;
//! * `naive-candidates` vs `engine-candidates` — the coverage-model
//!   workload at rows_per_relation = 100: every candgen-emitted candidate
//!   chased to its own solution, either by the retained per-tgd
//!   `chase_one` loop or by the batched [`ChaseEngine`] (shared
//!   body-prefix trie). Candgen reuses one body per source logical
//!   relation across many heads, so this is exactly the shared-prefix
//!   case the engine targets — the checked-in `BENCH_chase_baseline.json`
//!   records the engine beating the naive loop ≥3× and `bench_gate` holds
//!   every line;
//! * `engine-build` — compiling the engine (trie + fire plans) for the
//!   candidate set. Recorded separately because the engine is built once
//!   per candidate set and reused across chases; the line keeps compile
//!   cost visible and regression-gated.

use cms_ibench::{generate, ScenarioConfig};
use cms_tgd::{chase, chase_one, ChaseEngine};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_chase(c: &mut Criterion) {
    let mut group = c.benchmark_group("chase");
    group.sample_size(20);
    for invocations in [1usize, 2, 4] {
        let config = ScenarioConfig {
            rows_per_relation: 50,
            seed: 3,
            ..ScenarioConfig::all_primitives(invocations)
        };
        let scenario = generate(&config);
        let gold: Vec<_> = scenario.gold_tgds().into_iter().cloned().collect();
        group.throughput(Throughput::Elements(scenario.source.total_len() as u64));
        group.bench_with_input(
            BenchmarkId::new("gold-mapping", 7 * invocations),
            &invocations,
            |b, _| {
                b.iter(|| {
                    chase(
                        std::hint::black_box(&scenario.source),
                        std::hint::black_box(&gold),
                    )
                });
            },
        );

        // The candidate-set chase behind CoverageModel::build: one
        // solution per candgen-emitted candidate, over a larger source
        // (the regime where the per-candidate chase dominates selection).
        let big_config = ScenarioConfig {
            rows_per_relation: 100,
            ..config
        };
        let big = generate(&big_config);
        let candidates = big.candidates.clone();
        let engine = ChaseEngine::new(&candidates).expect("candidates validate");
        group.throughput(Throughput::Elements(candidates.len() as u64));
        group.bench_with_input(
            BenchmarkId::new("naive-candidates", invocations),
            &invocations,
            |b, _| {
                b.iter(|| {
                    let source = std::hint::black_box(&big.source);
                    std::hint::black_box(&candidates)
                        .iter()
                        .map(|tgd| chase_one(source, tgd))
                        .collect::<Vec<_>>()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine-candidates", invocations),
            &invocations,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(&engine).chase_all(std::hint::black_box(&big.source))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("engine-build", invocations),
            &invocations,
            |b, _| {
                b.iter(|| {
                    ChaseEngine::new(std::hint::black_box(&candidates))
                        .expect("candidates validate")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_chase);
criterion_main!(benches);

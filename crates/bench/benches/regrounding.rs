//! Criterion bench: per-flip re-grounding cost — full `Program::ground`
//! versus the delta subsystem (`Database::take_delta` +
//! `Program::reground_owned`) on the selection-evaluation program of
//! seeded iBench scenarios (same configs as the grounding bench).
//!
//! Each iteration flips one `inMap` observation (the local-search move):
//! `full-per-flip/N` pays a fresh grounding, `delta-per-flip/N` pays the
//! splice. The committed `BENCH_regrounding_baseline.json` snapshot
//! records both and their ratio; the acceptance bar is a ≥5× speedup on
//! `all_primitives(4)`. `full+cold-admm` vs `delta+warm-admm` additionally
//! time the end-to-end move evaluation including the MAP solve.

use cms_ibench::{generate, NoiseConfig, ScenarioConfig};
use cms_select::{build_eval_program, CoverageModel, ObjectiveWeights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::RefCell;

fn scenario_model(invocations: usize) -> CoverageModel {
    let config = ScenarioConfig {
        rows_per_relation: 20,
        noise: NoiseConfig::uniform(25.0),
        seed: 3,
        ..ScenarioConfig::all_primitives(invocations)
    };
    let scenario = generate(&config);
    CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates)
}

fn bench_regrounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("regrounding");
    group.sample_size(20);
    let weights = ObjectiveWeights::unweighted();
    for invocations in [1usize, 2, 4] {
        let model = scenario_model(invocations);
        let flip_atom = |preds: &cms_select::EvalPreds, c: usize| {
            cms_psl::GroundAtom::from_strs(preds.in_map, &[&format!("c{c}")])
        };

        // Full re-ground per flip (the pre-delta behavior).
        {
            let (mut program, preds) = build_eval_program(&model, &weights, &[]);
            let mut on = false;
            group.bench_with_input(
                BenchmarkId::new("full-per-flip", invocations),
                &invocations,
                |b, _| {
                    b.iter(|| {
                        on = !on;
                        program
                            .db
                            .observe(flip_atom(&preds, 0), f64::from(u8::from(on)));
                        let _ = program.db.take_delta();
                        std::hint::black_box(program.ground().expect("grounds"))
                    });
                },
            );
        }

        // Delta re-ground per flip.
        {
            let (mut program, preds) = build_eval_program(&model, &weights, &[]);
            let prior = RefCell::new(program.ground().expect("grounds"));
            let _ = program.db.take_delta();
            let mut on = false;
            group.bench_with_input(
                BenchmarkId::new("delta-per-flip", invocations),
                &invocations,
                |b, _| {
                    b.iter(|| {
                        on = !on;
                        program
                            .db
                            .observe(flip_atom(&preds, 0), f64::from(u8::from(on)));
                        let delta = program.db.take_delta();
                        let next = program
                            .reground_owned(prior.take(), &delta)
                            .expect("regrounds");
                        let reused = next.total_stats().terms_reused;
                        *prior.borrow_mut() = next;
                        std::hint::black_box(reused)
                    });
                },
            );
        }
    }

    // End-to-end move evaluation (ground + ADMM) on the smallest scenario:
    // cold full pipeline vs delta + warm-started solve.
    let model = scenario_model(1);
    let admm = cms_psl::AdmmConfig::default();
    {
        let (mut program, preds) = build_eval_program(&model, &weights, &[]);
        let mut on = false;
        group.bench_with_input(BenchmarkId::new("full+cold-admm", 1), &1, |b, _| {
            b.iter(|| {
                on = !on;
                program.db.observe(
                    cms_psl::GroundAtom::from_strs(preds.in_map, &["c0"]),
                    f64::from(u8::from(on)),
                );
                let _ = program.db.take_delta();
                let ground = program.ground().expect("grounds");
                std::hint::black_box(ground.solve(&admm).total_objective())
            });
        });
    }
    {
        let (mut program, preds) = build_eval_program(&model, &weights, &[]);
        let prior = RefCell::new(program.ground().expect("grounds"));
        let values = RefCell::new(prior.borrow().solve(&admm).admm.values.clone());
        let _ = program.db.take_delta();
        let mut on = false;
        group.bench_with_input(BenchmarkId::new("delta+warm-admm", 1), &1, |b, _| {
            b.iter(|| {
                on = !on;
                program.db.observe(
                    cms_psl::GroundAtom::from_strs(preds.in_map, &["c0"]),
                    f64::from(u8::from(on)),
                );
                let delta = program.db.take_delta();
                let next = program
                    .reground_owned(prior.take(), &delta)
                    .expect("regrounds");
                let sol = next.solve_warm(&admm, &values.borrow());
                values.borrow_mut().clone_from(&sol.admm.values);
                *prior.borrow_mut() = next;
                std::hint::black_box(sol.total_objective())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_regrounding);
criterion_main!(benches);

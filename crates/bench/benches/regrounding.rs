//! Criterion bench: per-flip re-grounding cost — full `Program::ground`
//! versus the delta subsystem (`Database::take_delta` +
//! `Program::reground_owned`) on the selection-evaluation program of
//! seeded iBench scenarios (same configs as the grounding bench).
//!
//! Each iteration flips one `inMap` observation (the local-search move):
//! `full-per-flip/N` pays a fresh grounding, `delta-per-flip/N` pays the
//! splice. The committed `BENCH_regrounding_baseline.json` snapshot
//! records both and their ratio; the acceptance bar is a ≥5× speedup on
//! `all_primitives(4)`. `full+cold-admm` vs `delta+warm-admm` additionally
//! time the end-to-end move evaluation including the MAP solve.
//!
//! The `arith-flip-*` lines exercise the arithmetic splice tables on the
//! *declarative* collective program (whose `explain-cap` rule is a genuine
//! summation over `covers(C,T)·inMap(C)`): each iteration re-weights one
//! `covers` observation — a value-only delta through the summation.
//! `arith-flip-delta/N` pays `take_delta` + `reground_owned` (the
//! per-free-binding splice re-folds only the bindings the mutated atom
//! feeds); `arith-flip-wholesale/N` re-grounds the explain-cap rule from
//! scratch via `ground_arith_rule` — exactly the per-rule cost the
//! regrounder paid before splice tables, and a *lower* bound on the old
//! path's total (which also spliced the rest of the program). The
//! acceptance bar is delta ≥5× faster than wholesale on
//! `all_primitives(4)`.
//!
//! The `batch-reground/B` vs `seq-reground/B` lines measure batched delta
//! streams: B effective `inMap` writes served by one coalesced drain and
//! one reground, against a drain + reground after every write. Both
//! process B mutations per iteration, so their iteration-time ratio is the
//! inverse mutations/sec ratio; the bar is batch ≥5× at B=1k (gated as
//! `batch-reground/1k : seq-reground/1k ≤ 0.2`).

use cms_ibench::{generate, NoiseConfig, ScenarioConfig};
use cms_select::{build_eval_program, CoverageModel, ObjectiveWeights};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::cell::RefCell;

fn scenario_model(invocations: usize) -> CoverageModel {
    let config = ScenarioConfig {
        rows_per_relation: 20,
        noise: NoiseConfig::uniform(25.0),
        seed: 3,
        ..ScenarioConfig::all_primitives(invocations)
    };
    let scenario = generate(&config);
    CoverageModel::build(&scenario.source, &scenario.target, &scenario.candidates)
}

fn bench_regrounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("regrounding");
    group.sample_size(20);
    let weights = ObjectiveWeights::unweighted();
    for invocations in [1usize, 2, 4] {
        let model = scenario_model(invocations);
        let flip_atom = |preds: &cms_select::EvalPreds, c: usize| {
            cms_psl::GroundAtom::from_strs(preds.in_map, &[&format!("c{c}")])
        };

        // Full re-ground per flip (the pre-delta behavior).
        {
            let (mut program, preds) = build_eval_program(&model, &weights, &[]);
            let mut on = false;
            group.bench_with_input(
                BenchmarkId::new("full-per-flip", invocations),
                &invocations,
                |b, _| {
                    b.iter(|| {
                        on = !on;
                        program
                            .db
                            .observe(flip_atom(&preds, 0), f64::from(u8::from(on)));
                        let _ = program.db.take_delta();
                        std::hint::black_box(program.ground().expect("grounds"))
                    });
                },
            );
        }

        // Delta re-ground per flip.
        {
            let (mut program, preds) = build_eval_program(&model, &weights, &[]);
            let prior = RefCell::new(program.ground().expect("grounds"));
            let _ = program.db.take_delta();
            let mut on = false;
            group.bench_with_input(
                BenchmarkId::new("delta-per-flip", invocations),
                &invocations,
                |b, _| {
                    b.iter(|| {
                        on = !on;
                        program
                            .db
                            .observe(flip_atom(&preds, 0), f64::from(u8::from(on)));
                        let delta = program.db.take_delta();
                        let next = program
                            .reground_owned(prior.take(), &delta)
                            .expect("regrounds");
                        let reused = next.total_stats().terms_reused;
                        *prior.borrow_mut() = next;
                        std::hint::black_box(reused)
                    });
                },
            );
        }
    }

    // Arithmetic-rule flips through the declarative program's explain-cap
    // summation: per-binding splice vs wholesale arith re-ground.
    for invocations in [1usize, 4] {
        let model = scenario_model(invocations);
        let selector = cms_select::PslCollective::default();

        // A covers re-weight that flips between two values each iteration.
        let flip = |program: &mut cms_psl::Program, atom: &cms_psl::GroundAtom, on: bool| {
            let v = if on { 0.65 } else { 0.35 };
            program.db.observe(atom.clone(), v);
        };

        // Delta path: take_delta + reground_owned splices every source and
        // re-folds only the touched explain-cap bindings.
        {
            let (mut program, _) = selector.build_declarative_program(&model, &weights);
            let covers = program.vocab.id_of("covers").expect("covers predicate");
            let atom = program.db.atoms_of(covers)[0].clone();
            let prior = RefCell::new(program.ground().expect("grounds"));
            let _ = program.db.take_delta();
            let mut on = false;
            group.bench_with_input(
                BenchmarkId::new("arith-flip-delta", invocations),
                &invocations,
                |b, _| {
                    b.iter(|| {
                        on = !on;
                        flip(&mut program, &atom, on);
                        let delta = program.db.take_delta();
                        let next = program
                            .reground_owned(prior.take(), &delta)
                            .expect("regrounds");
                        let spliced = next.total_stats().arith_bindings_spliced;
                        *prior.borrow_mut() = next;
                        std::hint::black_box(spliced)
                    });
                },
            );
        }

        // Wholesale path: re-ground the explain-cap arith rule from
        // scratch per flip (the pre-splice-table per-rule behavior).
        {
            let (mut program, _) = selector.build_declarative_program(&model, &weights);
            let covers = program.vocab.id_of("covers").expect("covers predicate");
            let atom = program.db.atoms_of(covers)[0].clone();
            let ground = program.ground().expect("grounds");
            let mut registry = cms_psl::VarRegistry::new();
            for v in 0..ground.num_vars() {
                registry.intern(ground.atom_of(v));
            }
            let rule = program.arith_rules()[0].clone();
            assert_eq!(rule.name, "explain-cap");
            let mut pots = Vec::new();
            let mut cons = Vec::new();
            let mut on = false;
            group.bench_with_input(
                BenchmarkId::new("arith-flip-wholesale", invocations),
                &invocations,
                |b, _| {
                    b.iter(|| {
                        on = !on;
                        flip(&mut program, &atom, on);
                        let _ = program.db.take_delta();
                        pots.clear();
                        cons.clear();
                        let stats = cms_psl::ground_arith_rule(
                            &rule,
                            &program.db,
                            &mut registry,
                            &mut pots,
                            &mut cons,
                        )
                        .expect("grounds");
                        std::hint::black_box(stats.groundings)
                    });
                },
            );
        }
    }

    // Batched delta streams on `all_primitives(4)`: B effective `inMap`
    // re-weights land round-robin over a working set of candidates, then
    // drain as ONE coalesced delta served by ONE reground
    // (`batch-reground/B`); `seq-reground/B` pays the pre-batching cost —
    // a drain + reground after every single write. Every write flips its
    // atom's value, so all B raw entries are effective; at B=1k the
    // round-robin revisits each atom repeatedly and the drain folds the
    // per-atom chains to one net `Changed` each. The acceptance bar is
    // batch ≥5× the sequential mutations/sec at B=1k (both lines process
    // B mutations per iteration, so that is a plain iteration-time ratio;
    // `bench_gate --ratio` enforces ≤0.2 in CI).
    {
        let model = scenario_model(4);
        let batch_state = |take: usize| {
            let (mut program, preds) = build_eval_program(&model, &weights, &[]);
            let atoms: Vec<_> = (0..take.min(model.num_candidates))
                .map(|c| cms_psl::GroundAtom::from_strs(preds.in_map, &[&format!("c{c}")]))
                .collect();
            // Observe the working set up front so the stream is
            // value-only: each later write logs exactly one raw entry.
            for a in &atoms {
                program.db.observe(a.clone(), 0.0);
            }
            let prior = RefCell::new(Some(program.ground().expect("grounds")));
            let _ = program.db.take_delta();
            let vals = vec![0.0f64; atoms.len()];
            (program, atoms, vals, prior)
        };
        for batch in [1usize, 32, 1000] {
            let (mut program, atoms, mut vals, prior) = batch_state(batch.min(200));
            let label = if batch == 1000 {
                "1k".to_owned()
            } else {
                batch.to_string()
            };
            group.bench_with_input(BenchmarkId::new("batch-reground", label), &batch, |b, _| {
                b.iter(|| {
                    for i in 0..batch {
                        let k = i % atoms.len();
                        vals[k] = 1.0 - vals[k];
                        program.db.observe(atoms[k].clone(), vals[k]);
                    }
                    let delta = program.db.take_delta();
                    let next = program
                        .reground_owned(prior.take().expect("prior ground"), &delta)
                        .expect("regrounds");
                    let coalesced = next.total_stats().entries_coalesced;
                    *prior.borrow_mut() = Some(next);
                    std::hint::black_box(coalesced)
                });
            });
        }
        for batch in [32usize, 1000] {
            let (mut program, atoms, mut vals, prior) = batch_state(batch.min(200));
            let label = if batch == 1000 {
                "1k".to_owned()
            } else {
                batch.to_string()
            };
            group.bench_with_input(BenchmarkId::new("seq-reground", label), &batch, |b, _| {
                b.iter(|| {
                    let mut reused = 0usize;
                    for i in 0..batch {
                        let k = i % atoms.len();
                        vals[k] = 1.0 - vals[k];
                        program.db.observe(atoms[k].clone(), vals[k]);
                        let delta = program.db.take_delta();
                        let next = program
                            .reground_owned(prior.take().expect("prior ground"), &delta)
                            .expect("regrounds");
                        reused = next.total_stats().terms_reused;
                        *prior.borrow_mut() = Some(next);
                    }
                    std::hint::black_box(reused)
                });
            });
        }
    }

    // End-to-end move evaluation (ground + ADMM) on the smallest scenario:
    // cold full pipeline vs delta + warm-started solve.
    let model = scenario_model(1);
    let admm = cms_psl::AdmmConfig::default();
    {
        let (mut program, preds) = build_eval_program(&model, &weights, &[]);
        let mut on = false;
        group.bench_with_input(BenchmarkId::new("full+cold-admm", 1), &1, |b, _| {
            b.iter(|| {
                on = !on;
                program.db.observe(
                    cms_psl::GroundAtom::from_strs(preds.in_map, &["c0"]),
                    f64::from(u8::from(on)),
                );
                let _ = program.db.take_delta();
                let ground = program.ground().expect("grounds");
                std::hint::black_box(ground.solve(&admm).total_objective())
            });
        });
    }
    {
        let (mut program, preds) = build_eval_program(&model, &weights, &[]);
        let prior = RefCell::new(program.ground().expect("grounds"));
        let values = RefCell::new(prior.borrow().solve(&admm).admm.values.clone());
        let _ = program.db.take_delta();
        let mut on = false;
        group.bench_with_input(BenchmarkId::new("delta+warm-admm", 1), &1, |b, _| {
            b.iter(|| {
                on = !on;
                program.db.observe(
                    cms_psl::GroundAtom::from_strs(preds.in_map, &["c0"]),
                    f64::from(u8::from(on)),
                );
                let delta = program.db.take_delta();
                let next = program
                    .reground_owned(prior.take(), &delta)
                    .expect("regrounds");
                let sol = next.solve_warm(&admm, &values.borrow());
                values.borrow_mut().clone_from(&sol.admm.values);
                *prior.borrow_mut() = next;
                std::hint::black_box(sol.total_objective())
            });
        });
    }

    // Self-healing and telemetry overhead on the clean path: the same
    // delta + warm-ADMM flip sequence on `all_primitives(4)`, once with
    // the watchdog fully disarmed and telemetry off, once with stall
    // detection, a wall-clock budget, and restarts armed (the delta guard
    // is inherent to `reground_owned` and runs in both), and once with
    // the telemetry level forced to `stats` (registry counters bumped per
    // ground/reground/solve, residual histogram recorded per iteration),
    // and once as the full flight recorder (`journal` level with a
    // 4096-slot ring and CPU sampling off — the always-on capture
    // configuration CI runs). No fault ever fires, so the set isolates
    // pure bookkeeping cost; CI gates `watchdog/plain ≤ 1.05`,
    // `obs-stats/plain ≤ 1.02`, and `ring/plain ≤ 1.02` via
    // `bench_gate --ratio`. The ratios compare same-run means at a few
    // percent of resolution, so the set is measured with
    // `bench_interleaved`: each sample round times one burst of every
    // config in turn (each body flips its own telemetry override per
    // iteration), so CPU-frequency drift and noisy scheduling windows are
    // charged to all lines roughly equally and cancel out of the
    // mean ratio instead of skewing whichever line happened to be
    // running.
    {
        let model = scenario_model(4);
        group.sample_size(120);
        let configs = [
            (
                "warm-flip-plain",
                cms_obs::ObsLevel::Off,
                false,
                cms_psl::AdmmConfig::default(),
            ),
            (
                "warm-flip-watchdog",
                cms_obs::ObsLevel::Off,
                false,
                cms_psl::AdmmConfig {
                    stall_window: 1000,
                    time_budget: Some(std::time::Duration::from_secs(60)),
                    max_restarts: 2,
                    ..cms_psl::AdmmConfig::default()
                },
            ),
            (
                "warm-flip-obs-stats",
                cms_obs::ObsLevel::Stats,
                false,
                cms_psl::AdmmConfig::default(),
            ),
            (
                "warm-flip-ring",
                cms_obs::ObsLevel::Journal,
                true,
                cms_psl::AdmmConfig::default(),
            ),
        ];
        // All lines share ONE program/ground/values state — the
        // flip sequence simply continues across bodies — so every line
        // times the same allocations, hash layouts, and solver
        // trajectory, and differs only in its `AdmmConfig` and telemetry
        // level: exactly the overhead being gated. Per-line instances
        // were tried first and their layout luck alone skewed the min
        // ratio by several percent in either direction.
        let (mut program, preds) = build_eval_program(&model, &weights, &[]);
        let in_map = preds.in_map;
        let prior = program.ground().expect("grounds");
        let values = prior
            .solve(&cms_psl::AdmmConfig::default())
            .admm
            .values
            .clone();
        let _ = program.db.take_delta();
        let shared = std::rc::Rc::new(RefCell::new((program, Some(prior), values, false)));
        let mut bodies: Vec<(BenchmarkId, Box<dyn FnMut()>)> = Vec::new();
        for (name, level, ring, cfg) in configs {
            let shared = std::rc::Rc::clone(&shared);
            bodies.push((
                BenchmarkId::new(name, 4),
                Box::new(move || {
                    cms_obs::set_level_override(level);
                    if ring {
                        // The flight-recorder line: journal events and
                        // spans land in a bounded ring (drop-oldest, so
                        // memory stays flat across the whole run) with
                        // the per-span CPU read disabled — the exact CI
                        // always-on configuration.
                        cms_obs::set_ring_capacity_override(Some(4096));
                        cms_obs::set_cpu_sampling_override(false);
                    }
                    let mut state = shared.borrow_mut();
                    let (program, prior, values, on) = &mut *state;
                    *on = !*on;
                    program.db.observe(
                        cms_psl::GroundAtom::from_strs(in_map, &["c0"]),
                        f64::from(u8::from(*on)),
                    );
                    let delta = program.db.take_delta();
                    let next = program
                        .reground_owned(prior.take().expect("prior ground"), &delta)
                        .expect("regrounds");
                    let sol = next.solve_warm(&cfg, &*values);
                    assert!(sol.admm.health.is_nominal(), "clean path must stay nominal");
                    values.clone_from(&sol.admm.values);
                    *prior = Some(next);
                    std::hint::black_box(sol.total_objective());
                }),
            ));
        }
        group.bench_interleaved(bodies);
        cms_obs::clear_level_override();
        cms_obs::clear_ring_capacity_override();
        cms_obs::clear_cpu_sampling_override();
        let _ = cms_obs::drain_journal_snapshot();
        let _ = cms_obs::drain_spans();
    }
    group.finish();
}

criterion_group!(benches, bench_regrounding);
criterion_main!(benches);

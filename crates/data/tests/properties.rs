//! Property-based tests for the relational substrate.

use cms_data::{
    apply_assignment, find_homomorphism, homomorphic, pattern_multiset, tuple_match, Instance,
    NullId, RelId, Tuple, TuplePattern, Value,
};
use proptest::prelude::*;
use std::collections::HashMap;

/// A random value: constant from a small pool or null from a small pool.
fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u32..6).prop_map(|c| Value::constant(&format!("c{c}"))),
        (0u32..4).prop_map(|n| Value::Null(NullId(n))),
    ]
}

fn arb_row(arity: usize) -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(arb_value(), arity)
}

fn arb_ground_row(arity: usize) -> impl Strategy<Value = Vec<Value>> {
    prop::collection::vec(
        (0u32..6).prop_map(|c| Value::constant(&format!("c{c}"))),
        arity,
    )
}

proptest! {
    /// Renaming nulls (injectively) never changes a tuple's pattern.
    #[test]
    fn pattern_invariant_under_null_renaming(row in arb_row(4), offset in 10u32..100) {
        let renamed: Vec<Value> = row
            .iter()
            .map(|v| match v {
                Value::Null(NullId(n)) => Value::Null(NullId(n + offset)),
                c => *c,
            })
            .collect();
        prop_assert_eq!(
            TuplePattern::of(RelId(0), &row),
            TuplePattern::of(RelId(0), &renamed)
        );
    }

    /// Two rows share a pattern iff some injective null renaming maps one
    /// to the other — checked in the forward direction: equal patterns ⇒
    /// a consistent renaming exists.
    #[test]
    fn equal_patterns_imply_renaming(row in arb_row(4)) {
        // Build a renamed twin and re-derive the mapping from scratch.
        let twin: Vec<Value> = row
            .iter()
            .map(|v| match v {
                Value::Null(NullId(n)) => Value::Null(NullId(n * 2 + 50)),
                c => *c,
            })
            .collect();
        prop_assert_eq!(TuplePattern::of(RelId(0), &row), TuplePattern::of(RelId(0), &twin));
        // Derive the renaming left→right; it must be a function and injective.
        let mut map: HashMap<NullId, NullId> = HashMap::new();
        let mut image: HashMap<NullId, NullId> = HashMap::new();
        for (a, b) in row.iter().zip(twin.iter()) {
            match (a, b) {
                (Value::Null(x), Value::Null(y)) => {
                    prop_assert_eq!(*map.entry(*x).or_insert(*y), *y);
                    prop_assert_eq!(*image.entry(*y).or_insert(*x), *x);
                }
                (a, b) => prop_assert_eq!(a, b),
            }
        }
    }

    /// If `tuple_match(k, t)` succeeds, applying the induced assignment to
    /// `k` yields exactly `t`.
    #[test]
    fn match_assignment_reconstructs_target(k in arb_row(4), t in arb_ground_row(4)) {
        if let Some(h) = tuple_match(&k, &t) {
            prop_assert_eq!(apply_assignment(&k, &h), t);
        }
    }

    /// A tuple always matches its own grounding (replace nulls by fresh
    /// constants consistently).
    #[test]
    fn tuple_matches_its_grounding(k in arb_row(5)) {
        let mut ground = Vec::with_capacity(k.len());
        for v in &k {
            ground.push(match v {
                Value::Null(NullId(n)) => Value::constant(&format!("g{n}")),
                c => *c,
            });
        }
        let h = tuple_match(&k, &ground);
        prop_assert!(h.is_some());
    }

    /// Every instance maps homomorphically into its grounding.
    #[test]
    fn instance_homomorphic_into_grounding(rows in prop::collection::vec(arb_row(3), 1..6)) {
        let mut from = Instance::new();
        let mut to = Instance::new();
        for row in &rows {
            from.insert(Tuple::new(RelId(0), row.clone()));
            let ground: Vec<Value> = row
                .iter()
                .map(|v| match v {
                    Value::Null(NullId(n)) => Value::constant(&format!("g{n}")),
                    c => *c,
                })
                .collect();
            to.insert(Tuple::new(RelId(0), ground));
        }
        prop_assert!(homomorphic(&from, &to));
    }

    /// find_homomorphism returns a *verified* witness: applying it maps
    /// every tuple into the target.
    #[test]
    fn homomorphism_witness_is_sound(
        from_rows in prop::collection::vec(arb_row(3), 1..5),
        to_rows in prop::collection::vec(arb_ground_row(3), 1..8),
    ) {
        let from: Instance = from_rows.iter().map(|r| Tuple::new(RelId(0), r.clone())).collect();
        let to: Instance = to_rows.iter().map(|r| Tuple::new(RelId(0), r.clone())).collect();
        if let Some(h) = find_homomorphism(&from, &to) {
            let h: cms_data::NullAssignment = h;
            for (rel, row) in from.iter_all() {
                let image = apply_assignment(row, &h);
                prop_assert!(to.contains(rel, &image), "image {image:?} missing");
            }
        }
    }

    /// Pattern multisets are insertion-order independent.
    #[test]
    fn pattern_multiset_order_independent(rows in prop::collection::vec(arb_row(3), 0..8)) {
        let fwd: Instance = rows.iter().map(|r| Tuple::new(RelId(0), r.clone())).collect();
        let rev: Instance = rows.iter().rev().map(|r| Tuple::new(RelId(0), r.clone())).collect();
        prop_assert_eq!(pattern_multiset(&fwd), pattern_multiset(&rev));
    }

    /// Instance insert/remove round-trips: after inserting rows and
    /// removing a subset, membership is exactly set difference.
    #[test]
    fn insert_remove_membership(
        rows in prop::collection::vec(arb_ground_row(2), 1..10),
        remove_mask in prop::collection::vec(any::<bool>(), 1..10),
    ) {
        let mut inst = Instance::new();
        for r in &rows {
            inst.insert(Tuple::new(RelId(0), r.clone()));
        }
        let mut removed = Vec::new();
        for (r, &m) in rows.iter().zip(remove_mask.iter()) {
            if m && inst.remove(RelId(0), r) {
                removed.push(r.clone());
            }
        }
        for r in &rows {
            let should_be_in = !removed.contains(r);
            prop_assert_eq!(inst.contains(RelId(0), r), should_be_in);
        }
    }
}

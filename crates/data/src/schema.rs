//! Schemas: relations, attributes, keys, and foreign keys.
//!
//! A [`Schema`] is an ordered list of [`Relation`]s addressed by dense
//! [`RelId`]s. Foreign keys drive the Clio-style candidate generation
//! (`cms-candgen` walks FK closures to form logical relations), and primary
//! keys drive data generation (`cms-ibench` keeps key columns unique).

use crate::fx::FxHashMap;
use crate::symbols::Sym;
use std::fmt;

/// Dense index of a relation within one [`Schema`].
///
/// `RelId`s are only meaningful relative to the schema that produced them;
/// source- and target-schema ids live in disjoint namespaces by convention
/// (dependencies keep body/head atoms separate).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A reference to one attribute (column) of one relation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AttrRef {
    /// Relation the attribute belongs to.
    pub rel: RelId,
    /// Zero-based column index.
    pub col: usize,
}

impl AttrRef {
    /// Construct an attribute reference.
    pub fn new(rel: RelId, col: usize) -> AttrRef {
        AttrRef { rel, col }
    }
}

/// A foreign key: `cols` of the owning relation reference `target_cols` of
/// relation `target` (positionally, same length).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ForeignKey {
    /// Referencing columns in the owning relation.
    pub cols: Vec<usize>,
    /// Referenced relation.
    pub target: RelId,
    /// Referenced columns in `target` (usually its key).
    pub target_cols: Vec<usize>,
}

/// A relation symbol: name, attribute names, optional key, foreign keys.
#[derive(Clone, Debug)]
pub struct Relation {
    /// Relation name (unique within the schema).
    pub name: Sym,
    /// Attribute names, in column order.
    pub attrs: Vec<Sym>,
    /// Primary-key column indices (empty = no declared key).
    pub key: Vec<usize>,
    /// Outgoing foreign keys.
    pub fks: Vec<ForeignKey>,
}

impl Relation {
    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// Column index of the attribute named `attr`, if present.
    pub fn col_of(&self, attr: Sym) -> Option<usize> {
        self.attrs.iter().position(|&a| a == attr)
    }
}

/// A named collection of relations.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    /// Schema name (e.g. "source", "target").
    pub name: String,
    relations: Vec<Relation>,
    by_name: FxHashMap<Sym, RelId>,
}

impl Schema {
    /// An empty schema with the given name.
    pub fn new(name: impl Into<String>) -> Schema {
        Schema {
            name: name.into(),
            relations: Vec::new(),
            by_name: FxHashMap::default(),
        }
    }

    /// Add a relation with the given name and attribute names; no key, no
    /// foreign keys. Returns its id.
    ///
    /// # Panics
    /// Panics if a relation with the same name already exists — schema
    /// construction is programmatic and a duplicate is always a bug.
    pub fn add_relation(&mut self, name: &str, attrs: &[&str]) -> RelId {
        self.add_relation_full(name, attrs, &[], Vec::new())
    }

    /// Add a relation with key columns and foreign keys.
    pub fn add_relation_full(
        &mut self,
        name: &str,
        attrs: &[&str],
        key: &[usize],
        fks: Vec<ForeignKey>,
    ) -> RelId {
        let name_sym = Sym::new(name);
        assert!(
            !self.by_name.contains_key(&name_sym),
            "duplicate relation name {name:?} in schema {:?}",
            self.name
        );
        for fk in &fks {
            assert_eq!(
                fk.cols.len(),
                fk.target_cols.len(),
                "FK column count mismatch"
            );
        }
        let id = RelId(u32::try_from(self.relations.len()).expect("too many relations"));
        self.relations.push(Relation {
            name: name_sym,
            attrs: attrs.iter().map(|a| Sym::new(a)).collect(),
            key: key.to_vec(),
            fks,
        });
        self.by_name.insert(name_sym, id);
        id
    }

    /// Append a foreign key to an existing relation.
    pub fn add_fk(&mut self, rel: RelId, fk: ForeignKey) {
        self.relations[rel.index()].fks.push(fk);
    }

    /// The relation with the given id.
    pub fn relation(&self, id: RelId) -> &Relation {
        &self.relations[id.index()]
    }

    /// Look up a relation id by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.by_name.get(&Sym::new(name)).copied()
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// True iff the schema has no relations.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Iterate `(RelId, &Relation)` in id order.
    pub fn iter(&self) -> impl Iterator<Item = (RelId, &Relation)> {
        self.relations
            .iter()
            .enumerate()
            .map(|(i, r)| (RelId(i as u32), r))
    }

    /// All relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        (0..self.relations.len()).map(|i| RelId(i as u32))
    }

    /// Display name of a relation id (for error messages and tables).
    pub fn rel_name(&self, id: RelId) -> Sym {
        self.relations[id.index()].name
    }

    /// Resolve an attribute reference to `"rel.attr"` form.
    pub fn attr_name(&self, a: AttrRef) -> String {
        let rel = self.relation(a.rel);
        format!("{}.{}", rel.name, rel.attrs[a.col])
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "schema {} {{", self.name)?;
        for (_, r) in self.iter() {
            let attrs: Vec<String> = r.attrs.iter().map(|a| a.to_string()).collect();
            write!(f, "  {}({})", r.name, attrs.join(", "))?;
            if !r.key.is_empty() {
                write!(f, " key({:?})", r.key)?;
            }
            for fk in &r.fks {
                write!(
                    f,
                    " fk({:?} -> {}{:?})",
                    fk.cols,
                    self.rel_name(fk.target),
                    fk.target_cols
                )?;
            }
            writeln!(f)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        let mut s = Schema::new("source");
        let proj = s.add_relation_full("proj", &["name", "code", "leader"], &[1], Vec::new());
        let _team = s.add_relation_full(
            "team",
            &["pcode", "emp"],
            &[],
            vec![ForeignKey {
                cols: vec![0],
                target: proj,
                target_cols: vec![1],
            }],
        );
        s
    }

    #[test]
    fn add_and_lookup() {
        let s = sample();
        assert_eq!(s.len(), 2);
        let proj = s.rel_id("proj").unwrap();
        assert_eq!(s.relation(proj).arity(), 3);
        assert_eq!(s.relation(proj).col_of(Sym::new("code")), Some(1));
        assert_eq!(s.relation(proj).col_of(Sym::new("nope")), None);
        assert!(s.rel_id("missing").is_none());
    }

    #[test]
    fn foreign_keys_recorded() {
        let s = sample();
        let team = s.rel_id("team").unwrap();
        let proj = s.rel_id("proj").unwrap();
        let fk = &s.relation(team).fks[0];
        assert_eq!(fk.target, proj);
        assert_eq!(fk.cols, vec![0]);
        assert_eq!(fk.target_cols, vec![1]);
    }

    #[test]
    #[should_panic(expected = "duplicate relation")]
    fn duplicate_relation_panics() {
        let mut s = Schema::new("x");
        s.add_relation("r", &["a"]);
        s.add_relation("r", &["b"]);
    }

    #[test]
    fn attr_name_rendering() {
        let s = sample();
        let proj = s.rel_id("proj").unwrap();
        assert_eq!(s.attr_name(AttrRef::new(proj, 2)), "proj.leader");
    }

    #[test]
    fn display_lists_relations() {
        let text = sample().to_string();
        assert!(text.contains("proj(name, code, leader)"));
        assert!(text.contains("team(pcode, emp)"));
        assert!(text.contains("fk"));
    }
}

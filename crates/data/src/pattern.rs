//! Per-tuple null-pattern canonicalization.
//!
//! Tuples produced by different chase runs use different labeled nulls even
//! when they are "the same" tuple up to null renaming. A [`TuplePattern`]
//! replaces each null by its first-occurrence index *within the tuple*,
//! giving a canonical form under per-tuple null renaming:
//!
//! `T(a, _N7, _N7, _N9)` and `T(a, _N2, _N2, _N5)` share the pattern
//! `T(a, #0, #0, #1)`.
//!
//! This is the equivalence used (a) to recognize the gold mapping's output
//! inside the candidate set's output when classifying noise tuples
//! (appendix §II "we take into account homomorphisms when determining which
//! of these cases applies"), and (b) for data-level precision/recall. It
//! deliberately ignores *cross*-tuple null sharing: two instances with equal
//! pattern multisets may still differ in how nulls join across tuples. For
//! joint-null comparisons use [`crate::homomorphism`], which is exact.

use crate::fx::FxHashMap;
use crate::schema::RelId;
use crate::symbols::Sym;
use crate::value::{NullId, Value};
use std::collections::BTreeMap;
use std::fmt;

/// A canonicalized value: constant, or null index by first occurrence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum PatVal {
    /// A ground constant.
    Const(Sym),
    /// The i-th distinct null within the tuple (0-based).
    Null(usize),
}

/// Canonical form of a tuple under per-tuple null renaming.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TuplePattern {
    /// Relation the tuple belongs to.
    pub rel: RelId,
    /// Canonicalized values.
    pub vals: Vec<PatVal>,
}

impl TuplePattern {
    /// Canonicalize a row of `rel`.
    pub fn of(rel: RelId, row: &[Value]) -> TuplePattern {
        let mut seen: FxHashMap<NullId, usize> = FxHashMap::default();
        let vals = row
            .iter()
            .map(|v| match v {
                Value::Const(s) => PatVal::Const(*s),
                Value::Null(n) => {
                    let next = seen.len();
                    PatVal::Null(*seen.entry(*n).or_insert(next))
                }
            })
            .collect();
        TuplePattern { rel, vals }
    }

    /// True iff the pattern contains no nulls.
    pub fn is_ground(&self) -> bool {
        self.vals.iter().all(|v| matches!(v, PatVal::Const(_)))
    }
}

impl fmt::Display for TuplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}(", self.rel.0)?;
        for (i, v) in self.vals.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match v {
                PatVal::Const(s) => write!(f, "{s}")?,
                PatVal::Null(k) => write!(f, "#{k}")?,
            }
        }
        write!(f, ")")
    }
}

/// Multiset of tuple patterns of an instance (pattern → multiplicity).
///
/// Because instances are sets of tuples but distinct null-tuples can share a
/// pattern, multiplicities can exceed 1.
pub fn pattern_multiset(inst: &crate::instance::Instance) -> BTreeMap<TuplePattern, usize> {
    let mut out: BTreeMap<TuplePattern, usize> = BTreeMap::new();
    for (rel, row) in inst.iter_all() {
        *out.entry(TuplePattern::of(rel, row)).or_insert(0) += 1;
    }
    out
}

/// Multiset intersection size of two pattern multisets — the numerator of
/// pattern-level precision/recall.
pub fn multiset_overlap(
    a: &BTreeMap<TuplePattern, usize>,
    b: &BTreeMap<TuplePattern, usize>,
) -> usize {
    a.iter()
        .map(|(p, &na)| na.min(b.get(p).copied().unwrap_or(0)))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Instance;
    use crate::tuple::Tuple;

    fn n(id: u32) -> Value {
        Value::Null(NullId(id))
    }

    fn c(s: &str) -> Value {
        Value::constant(s)
    }

    #[test]
    fn renaming_invariance() {
        let p1 = TuplePattern::of(RelId(0), &[c("a"), n(7), n(7), n(9)]);
        let p2 = TuplePattern::of(RelId(0), &[c("a"), n(2), n(2), n(5)]);
        assert_eq!(p1, p2);
    }

    #[test]
    fn null_identity_within_tuple_matters() {
        let p1 = TuplePattern::of(RelId(0), &[n(1), n(1)]);
        let p2 = TuplePattern::of(RelId(0), &[n(1), n(2)]);
        assert_ne!(p1, p2);
    }

    #[test]
    fn relation_distinguishes_patterns() {
        let p1 = TuplePattern::of(RelId(0), &[c("a")]);
        let p2 = TuplePattern::of(RelId(1), &[c("a")]);
        assert_ne!(p1, p2);
    }

    #[test]
    fn ground_detection_and_display() {
        let p = TuplePattern::of(RelId(2), &[c("ML"), n(0)]);
        assert!(!p.is_ground());
        assert_eq!(p.to_string(), "r2(ML, #0)");
        assert!(TuplePattern::of(RelId(2), &[c("x")]).is_ground());
    }

    #[test]
    fn multiset_counts_pattern_duplicates() {
        let mut inst = Instance::new();
        // Distinct nulls, same pattern.
        inst.insert(Tuple::new(RelId(0), vec![c("a"), n(0)]));
        inst.insert(Tuple::new(RelId(0), vec![c("a"), n(1)]));
        inst.insert(Tuple::new(RelId(0), vec![c("b"), n(2)]));
        let ms = pattern_multiset(&inst);
        assert_eq!(ms.len(), 2);
        let pa = TuplePattern::of(RelId(0), &[c("a"), n(42)]);
        assert_eq!(ms.get(&pa), Some(&2));
    }

    #[test]
    fn overlap_is_min_of_multiplicities() {
        let mut a = Instance::new();
        a.insert(Tuple::new(RelId(0), vec![c("a"), n(0)]));
        a.insert(Tuple::new(RelId(0), vec![c("a"), n(1)]));
        let mut b = Instance::new();
        b.insert(Tuple::new(RelId(0), vec![c("a"), n(5)]));
        b.insert(Tuple::new(RelId(0), vec![c("z"), n(6)]));
        let (ma, mb) = (pattern_multiset(&a), pattern_multiset(&b));
        assert_eq!(multiset_overlap(&ma, &mb), 1);
        assert_eq!(multiset_overlap(&mb, &ma), 1);
    }
}

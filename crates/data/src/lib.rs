//! `cms-data` — the relational substrate for collective schema-mapping
//! selection.
//!
//! This crate provides the data-exchange vocabulary everything else builds
//! on: interned symbols, values with labeled nulls, tuples, schemas with
//! keys and foreign keys, set-semantics instances, per-tuple null-pattern
//! canonicalization, and homomorphism machinery.
//!
//! It corresponds to the "database" layer the paper assumes: the source
//! instance `I`, target instance `J`, and the canonical universal solutions
//! `K_M` produced by chasing `I` are all [`Instance`]s over [`Schema`]s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fx;
pub mod homomorphism;
pub mod instance;
pub mod pattern;
pub mod schema;
pub mod symbols;
pub mod tuple;
pub mod value;

pub use fx::{FxHashMap, FxHashSet};
pub use homomorphism::{
    apply_assignment, find_homomorphism, hom_equivalent, homomorphic, tuple_match, NullAssignment,
};
pub use instance::{ColIndexRef, ColumnIndex, Instance, RelationData, Rows, RowsIter};
pub use pattern::{multiset_overlap, pattern_multiset, PatVal, TuplePattern};
pub use schema::{AttrRef, ForeignKey, RelId, Relation, Schema};
pub use symbols::Sym;
pub use tuple::Tuple;
pub use value::{NullFactory, NullId, Value};

//! Homomorphisms between null-containing instances.
//!
//! Two notions are needed by the paper's machinery:
//!
//! 1. **Per-tuple matching** ([`tuple_match`]): tuple `k` (with nulls)
//!    *matches* ground tuple `t` iff every constant position agrees; the
//!    match induces an assignment of `k`'s nulls to `t`'s constants (which
//!    must be internally consistent when a null occurs twice in `k`). This
//!    is the building block of the graded `covers`/`creates` semantics of
//!    objective Eq. (9).
//!
//! 2. **Instance-level homomorphisms** ([`find_homomorphism`]): a map `h`
//!    from nulls of `K` to constants such that `h(K) ⊆ J`. Used to decide
//!    whether a universal solution embeds into the target instance, and in
//!    tests validating the chase.

use crate::fx::FxHashMap;
use crate::instance::Instance;
use crate::value::{NullId, Value};

/// The null assignment induced by matching one tuple against a ground tuple.
pub type NullAssignment = FxHashMap<NullId, Value>;

/// Try to match `k` (may contain nulls) against ground tuple `t`.
///
/// Returns the induced null assignment if every constant position of `k`
/// equals `t` and repeated nulls in `k` map consistently; `None` otherwise.
/// `t` must be ground (all constants); a null in `t` fails the match.
pub fn tuple_match(k: &[Value], t: &[Value]) -> Option<NullAssignment> {
    if k.len() != t.len() {
        return None;
    }
    let mut assignment = NullAssignment::default();
    for (kv, tv) in k.iter().zip(t.iter()) {
        match (kv, tv) {
            (Value::Const(a), Value::Const(b)) => {
                if a != b {
                    return None;
                }
            }
            (Value::Null(n), Value::Const(_)) => {
                if let Some(prev) = assignment.insert(*n, *tv) {
                    if prev != *tv {
                        return None;
                    }
                }
            }
            // The right-hand side must be ground.
            (_, Value::Null(_)) => return None,
        }
    }
    Some(assignment)
}

/// Apply a (partial) null assignment to a row, leaving unmapped nulls as-is.
pub fn apply_assignment(row: &[Value], h: &NullAssignment) -> Vec<Value> {
    row.iter()
        .map(|v| match v {
            Value::Null(n) => h.get(n).copied().unwrap_or(*v),
            c => *c,
        })
        .collect()
}

/// Search for a homomorphism from `from` into `to`: a total map of `from`'s
/// nulls to values such that the image of every tuple is in `to`.
///
/// `to` is typically ground, but null-to-null mappings are allowed (standard
/// data-exchange homomorphisms are constant-preserving and may map nulls to
/// nulls). Backtracking over tuples; exponential in the worst case but the
/// instances compared here are small blocks.
pub fn find_homomorphism(from: &Instance, to: &Instance) -> Option<FxHashMap<NullId, Value>> {
    let tuples: Vec<_> = from.iter_all().collect();
    let mut assignment: FxHashMap<NullId, Value> = FxHashMap::default();
    if extend(&tuples, 0, to, &mut assignment) {
        Some(assignment)
    } else {
        None
    }
}

/// True iff a homomorphism `from → to` exists.
pub fn homomorphic(from: &Instance, to: &Instance) -> bool {
    find_homomorphism(from, to).is_some()
}

/// True iff `a` and `b` are homomorphically equivalent.
pub fn hom_equivalent(a: &Instance, b: &Instance) -> bool {
    homomorphic(a, b) && homomorphic(b, a)
}

fn extend(
    tuples: &[(crate::schema::RelId, &[Value])],
    idx: usize,
    to: &Instance,
    assignment: &mut FxHashMap<NullId, Value>,
) -> bool {
    let Some(&(rel, row)) = tuples.get(idx) else {
        return true; // all tuples mapped
    };
    // Candidate images: every tuple of `to` over the same relation that is
    // consistent with the current partial assignment.
    for cand in to.rows(rel) {
        let mut added: Vec<NullId> = Vec::new();
        if unify(row, cand, assignment, &mut added) && extend(tuples, idx + 1, to, assignment) {
            return true;
        }
        for n in added {
            assignment.remove(&n);
        }
    }
    false
}

/// Try to extend `assignment` so that the image of `row` equals `cand`.
/// Records newly bound nulls in `added` for backtracking.
fn unify(
    row: &[Value],
    cand: &[Value],
    assignment: &mut FxHashMap<NullId, Value>,
    added: &mut Vec<NullId>,
) -> bool {
    if row.len() != cand.len() {
        return false;
    }
    for (v, c) in row.iter().zip(cand.iter()) {
        match v {
            Value::Const(_) => {
                if v != c {
                    return false;
                }
            }
            Value::Null(n) => match assignment.get(n) {
                Some(img) => {
                    if img != c {
                        return false;
                    }
                }
                None => {
                    assignment.insert(*n, *c);
                    added.push(*n);
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::RelId;
    use crate::tuple::Tuple;

    fn c(s: &str) -> Value {
        Value::constant(s)
    }

    fn n(id: u32) -> Value {
        Value::Null(NullId(id))
    }

    #[test]
    fn tuple_match_constants_must_agree() {
        assert!(tuple_match(
            &[c("ML"), c("Alice"), n(2)],
            &[c("ML"), c("Alice"), c("111")]
        )
        .is_some());
        assert!(tuple_match(
            &[c("BigData"), c("Bob"), n(1)],
            &[c("ML"), c("Alice"), c("111")]
        )
        .is_none());
    }

    #[test]
    fn tuple_match_repeated_null_must_be_consistent() {
        assert!(tuple_match(&[n(0), n(0)], &[c("a"), c("a")]).is_some());
        assert!(tuple_match(&[n(0), n(0)], &[c("a"), c("b")]).is_none());
    }

    #[test]
    fn tuple_match_induces_assignment() {
        let h = tuple_match(&[c("ML"), n(4)], &[c("ML"), c("111")]).unwrap();
        assert_eq!(h.get(&NullId(4)), Some(&c("111")));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn tuple_match_rejects_null_targets_and_arity_mismatch() {
        assert!(tuple_match(&[c("a")], &[n(0)]).is_none());
        assert!(tuple_match(&[c("a")], &[c("a"), c("b")]).is_none());
    }

    #[test]
    fn apply_assignment_substitutes() {
        let mut h = NullAssignment::default();
        h.insert(NullId(1), c("x"));
        assert_eq!(
            apply_assignment(&[n(1), n(2), c("y")], &h),
            vec![c("x"), n(2), c("y")]
        );
    }

    #[test]
    fn homomorphism_basic() {
        // K = {T(ML, N0), O(N0, SAP)}  J = {T(ML, 111), O(111, SAP)}
        let rel_t = RelId(0);
        let rel_o = RelId(1);
        let mut k = Instance::new();
        k.insert(Tuple::new(rel_t, vec![c("ML"), n(0)]));
        k.insert(Tuple::new(rel_o, vec![n(0), c("SAP")]));
        let mut j = Instance::new();
        j.insert_ground(rel_t, &["ML", "111"]);
        j.insert_ground(rel_o, &["111", "SAP"]);
        let h = find_homomorphism(&k, &j).unwrap();
        assert_eq!(h.get(&NullId(0)), Some(&c("111")));
    }

    #[test]
    fn homomorphism_requires_joint_consistency() {
        // N0 would need to be both 111 (for T) and 222 (for O): impossible.
        let rel_t = RelId(0);
        let rel_o = RelId(1);
        let mut k = Instance::new();
        k.insert(Tuple::new(rel_t, vec![c("ML"), n(0)]));
        k.insert(Tuple::new(rel_o, vec![n(0), c("SAP")]));
        let mut j = Instance::new();
        j.insert_ground(rel_t, &["ML", "111"]);
        j.insert_ground(rel_o, &["222", "SAP"]);
        assert!(!homomorphic(&k, &j));
    }

    #[test]
    fn homomorphism_backtracks_across_choices() {
        // Two possible images for the first tuple; only the second works
        // jointly with the second tuple.
        let r = RelId(0);
        let s = RelId(1);
        let mut k = Instance::new();
        k.insert(Tuple::new(r, vec![n(0)]));
        k.insert(Tuple::new(s, vec![n(0), c("z")]));
        let mut j = Instance::new();
        j.insert_ground(r, &["a"]);
        j.insert_ground(r, &["b"]);
        j.insert_ground(s, &["b", "z"]);
        let h = find_homomorphism(&k, &j).unwrap();
        assert_eq!(h.get(&NullId(0)), Some(&c("b")));
    }

    #[test]
    fn ground_subset_is_homomorphic() {
        let r = RelId(0);
        let mut k = Instance::new();
        k.insert_ground(r, &["a"]);
        let mut j = Instance::new();
        j.insert_ground(r, &["a"]);
        j.insert_ground(r, &["b"]);
        assert!(homomorphic(&k, &j));
        assert!(!homomorphic(&j, &k));
        assert!(!hom_equivalent(&k, &j));
    }

    #[test]
    fn hom_equivalence_up_to_null_renaming() {
        let r = RelId(0);
        let mut a = Instance::new();
        a.insert(Tuple::new(r, vec![c("x"), n(0)]));
        let mut b = Instance::new();
        b.insert(Tuple::new(r, vec![c("x"), n(9)]));
        assert!(hom_equivalent(&a, &b));
    }
}

//! Global string interning.
//!
//! All constants, relation names, and attribute names in the workspace are
//! interned into [`Sym`]s — small `Copy` handles that compare and hash as a
//! single `u32`. This keeps tuples compact (`Vec<Value>` where `Value` is 8
//! bytes) and makes the chase / coverage inner loops allocation-free.
//!
//! The interner is a process-global append-only table. Interned strings are
//! leaked intentionally: the set of distinct symbols in any scenario is small
//! (schema names + the data value pool) and the handles must stay valid for
//! the whole process, which is exactly the lifetime a leak provides.

use crate::fx::FxHashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string handle.
///
/// Two `Sym`s are equal iff the strings they intern are equal. Ordering is
/// by interning order (stable within a process, *not* lexicographic); use
/// [`Sym::as_str`] when lexicographic order matters.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

struct Interner {
    strings: Vec<&'static str>,
    lookup: FxHashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            strings: Vec::new(),
            lookup: FxHashMap::default(),
        })
    })
}

impl Sym {
    /// Intern `s`, returning its handle. Idempotent.
    pub fn new(s: &str) -> Sym {
        let mut guard = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = guard.lookup.get(s) {
            return Sym(id);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let id = u32::try_from(guard.strings.len()).expect("too many interned symbols");
        guard.strings.push(leaked);
        guard.lookup.insert(leaked, id);
        Sym(id)
    }

    /// The interned string. O(1); the reference is `'static`.
    pub fn as_str(self) -> &'static str {
        let guard = interner().lock().expect("symbol interner poisoned");
        guard.strings[self.0 as usize]
    }

    /// Raw handle value, for compact serialization in tests.
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

impl From<String> for Sym {
    fn from(s: String) -> Sym {
        Sym::new(&s)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({:?})", self.as_str())
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Sym::new("hello");
        let b = Sym::new("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        assert_ne!(Sym::new("alpha"), Sym::new("beta"));
    }

    #[test]
    fn display_shows_the_string() {
        let s = Sym::new("task");
        assert_eq!(s.to_string(), "task");
        assert_eq!(format!("{s:?}"), "Sym(\"task\")");
    }

    #[test]
    fn from_impls() {
        let a: Sym = "x".into();
        let b: Sym = String::from("x").into();
        assert_eq!(a, b);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                std::thread::spawn(|| {
                    (0..100)
                        .map(|i| Sym::new(&format!("c{i}")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<Sym>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1]);
        }
    }
}

//! Instances: sets of tuples per relation, with order-preserving dedup.
//!
//! An [`Instance`] is a set-semantics database: inserting a duplicate tuple
//! is a no-op. Iteration order is insertion order (deterministic given a
//! deterministic producer — important for reproducible experiments).

use crate::fx::FxHashMap;
use crate::schema::RelId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;

/// Tuples of one relation: an insertion-ordered set.
#[derive(Clone, Debug, Default)]
pub struct RelationData {
    rows: Vec<Vec<Value>>,
    lookup: FxHashMap<Vec<Value>, usize>,
}

impl RelationData {
    /// Insert a row; returns `true` if it was new.
    pub fn insert(&mut self, row: Vec<Value>) -> bool {
        if self.lookup.contains_key(&row) {
            return false;
        }
        self.lookup.insert(row.clone(), self.rows.len());
        self.rows.push(row);
        true
    }

    /// Membership test.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.lookup.contains_key(row)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Rows in insertion order.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }
}

/// A database instance: relation id → set of rows.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    rels: FxHashMap<RelId, RelationData>,
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.rels.entry(t.rel).or_default().insert(t.args)
    }

    /// Insert a ground tuple built from string constants.
    pub fn insert_ground(&mut self, rel: RelId, consts: &[&str]) -> bool {
        self.insert(Tuple::ground(rel, consts))
    }

    /// Remove a tuple; returns `true` if it was present.
    ///
    /// O(n) in the relation size (rebuilds the positional index); removal is
    /// rare (only the noise injector uses it).
    pub fn remove(&mut self, rel: RelId, row: &[Value]) -> bool {
        let Some(data) = self.rels.get_mut(&rel) else {
            return false;
        };
        let Some(pos) = data.lookup.remove(row) else {
            return false;
        };
        data.rows.remove(pos);
        for (i, r) in data.rows.iter().enumerate().skip(pos) {
            *data.lookup.get_mut(r).expect("index out of sync") = i;
        }
        true
    }

    /// Membership test.
    pub fn contains(&self, rel: RelId, row: &[Value]) -> bool {
        self.rels.get(&rel).is_some_and(|d| d.contains(row))
    }

    /// Membership test for a [`Tuple`].
    pub fn contains_tuple(&self, t: &Tuple) -> bool {
        self.contains(t.rel, &t.args)
    }

    /// Rows of one relation (empty slice if the relation has no rows).
    pub fn rows(&self, rel: RelId) -> &[Vec<Value>] {
        self.rels.get(&rel).map_or(&[], |d| d.rows())
    }

    /// Total number of tuples across all relations.
    pub fn total_len(&self) -> usize {
        self.rels.values().map(RelationData::len).sum()
    }

    /// True iff the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Relation ids with at least one row, in unspecified order.
    pub fn populated_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(&r, _)| r)
    }

    /// Iterate all tuples as `(RelId, &row)`, grouped by relation.
    pub fn iter_all(&self) -> impl Iterator<Item = (RelId, &[Value])> + '_ {
        let mut rels: Vec<_> = self.rels.iter().collect();
        rels.sort_by_key(|(r, _)| **r);
        rels.into_iter()
            .flat_map(|(&r, d)| d.rows().iter().map(move |row| (r, row.as_slice())))
    }

    /// Collect all tuples into owned [`Tuple`]s (sorted by relation id, then
    /// insertion order) — convenient for assertions in tests.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter_all()
            .map(|(r, row)| Tuple::new(r, row.to_vec()))
            .collect()
    }

    /// Largest null id occurring in the instance plus one (0 if ground):
    /// the safe starting point for a [`crate::value::NullFactory`] extending
    /// this instance.
    pub fn next_null_id(&self) -> u32 {
        self.iter_all()
            .flat_map(|(_, row)| row.iter())
            .filter_map(|v| v.as_null())
            .map(|n| n.0 + 1)
            .max()
            .unwrap_or(0)
    }

    /// Union: insert every tuple of `other` into `self`.
    pub fn absorb(&mut self, other: &Instance) {
        for (rel, row) in other.iter_all() {
            self.insert(Tuple::new(rel, row.to_vec()));
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (rel, row) in self.iter_all() {
            writeln!(f, "{}", Tuple::new(rel, row.to_vec()))?;
        }
        Ok(())
    }
}

impl FromIterator<Tuple> for Instance {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Instance {
        let mut inst = Instance::new();
        for t in iter {
            inst.insert(t);
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{NullId, Value};

    #[test]
    fn insert_dedups() {
        let mut inst = Instance::new();
        assert!(inst.insert_ground(RelId(0), &["a", "b"]));
        assert!(!inst.insert_ground(RelId(0), &["a", "b"]));
        assert!(inst.insert_ground(RelId(0), &["a", "c"]));
        assert_eq!(inst.total_len(), 2);
    }

    #[test]
    fn contains_and_rows() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(1), &["x"]);
        assert!(inst.contains(RelId(1), &[Value::constant("x")]));
        assert!(!inst.contains(RelId(1), &[Value::constant("y")]));
        assert!(!inst.contains(RelId(9), &[Value::constant("x")]));
        assert_eq!(inst.rows(RelId(1)).len(), 1);
        assert!(inst.rows(RelId(9)).is_empty());
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a"]);
        inst.insert_ground(RelId(0), &["b"]);
        inst.insert_ground(RelId(0), &["c"]);
        assert!(inst.remove(RelId(0), &[Value::constant("b")]));
        assert!(!inst.remove(RelId(0), &[Value::constant("b")]));
        assert!(inst.contains(RelId(0), &[Value::constant("c")]));
        assert!(inst.contains(RelId(0), &[Value::constant("a")]));
        assert_eq!(inst.total_len(), 2);
        // Re-insert after remove must work (index rebuilt correctly).
        assert!(inst.insert_ground(RelId(0), &["b"]));
        assert_eq!(inst.total_len(), 3);
    }

    #[test]
    fn next_null_id_tracks_maximum() {
        let mut inst = Instance::new();
        assert_eq!(inst.next_null_id(), 0);
        inst.insert(Tuple::new(
            RelId(0),
            vec![Value::constant("a"), Value::Null(NullId(4))],
        ));
        assert_eq!(inst.next_null_id(), 5);
    }

    #[test]
    fn absorb_unions() {
        let mut a = Instance::new();
        a.insert_ground(RelId(0), &["x"]);
        let mut b = Instance::new();
        b.insert_ground(RelId(0), &["x"]);
        b.insert_ground(RelId(1), &["y"]);
        a.absorb(&b);
        assert_eq!(a.total_len(), 2);
    }

    #[test]
    fn iter_all_sorted_by_relation() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(3), &["z"]);
        inst.insert_ground(RelId(1), &["a"]);
        let rels: Vec<RelId> = inst.iter_all().map(|(r, _)| r).collect();
        assert_eq!(rels, vec![RelId(1), RelId(3)]);
    }

    #[test]
    fn from_iterator_collects() {
        let inst: Instance = vec![
            Tuple::ground(RelId(0), &["a"]),
            Tuple::ground(RelId(0), &["a"]),
            Tuple::ground(RelId(1), &["b"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(inst.total_len(), 2);
    }
}

//! Instances: sets of tuples per relation, with order-preserving dedup.
//!
//! An [`Instance`] is a set-semantics database: inserting a duplicate tuple
//! is a no-op. Iteration order is insertion order (deterministic given a
//! deterministic producer — important for reproducible experiments).
//!
//! ## Storage layout
//!
//! Each relation stores its rows **flat**: one `Vec<Value>` holding every
//! row back to back plus an offset table ([`Rows`] is the cheap view over
//! it). Appending a row is a value copy — no per-row heap allocation — and
//! scans walk contiguous memory. Batch producers (the chase engine) append
//! whole row blocks via [`Instance::extend_distinct`].
//!
//! Set semantics are enforced by a **lazy** membership map
//! (`row → position`), built on first insert/contains/remove. Bulk appends
//! of caller-guaranteed-distinct rows skip it entirely when it is not
//! built.
//!
//! Each relation additionally carries a lazy **column index**
//! `(column, value) → row positions`, built on first probe. The tgd
//! matcher probes it instead of scanning whole relations once a conjunct
//! has a bound argument; reads go through an `RwLock` so concurrent
//! readers can share one instance.
//!
//! Index maintenance is **generation-stamped and incremental**: every
//! mutation bumps the relation's generation; appends patch the posting
//! lists in place and re-stamp the index, while removes — which shift row
//! positions — invalidate it for a lazy rebuild. `built_at`/`stamp`
//! generations are exposed via [`Instance::index_stamp`] so callers (and
//! tests) can verify an index survived a batch of appends.
//!
//! ## Lock poisoning
//!
//! Both lazy structures (membership map, column index) live behind
//! `RwLock`s whose poisoning is deliberately **recovered**, not
//! propagated: every writer builds its replacement value completely and
//! only then assigns it under the guard, so a panic elsewhere can never
//! leave a half-updated cache visible. Cascading the original panic into
//! every later reader (the `expect` idiom) would turn one failed worker
//! into a wedged pipeline for no integrity gain.

use crate::fx::FxHashMap;
use crate::schema::RelId;
use crate::tuple::Tuple;
use crate::value::Value;
use std::fmt;
use std::ops::Index;
use std::sync::{RwLock, RwLockReadGuard};

/// Per-column posting lists of one relation.
#[derive(Debug, Default)]
pub struct ColumnIndex {
    /// `by_col[c][v]` = positions (in row order) of rows with `row[c] == v`.
    by_col: Vec<FxHashMap<Value, Vec<u32>>>,
    /// Relation generation at which the index was built from scratch.
    built_at: u64,
    /// Relation generation the index is current for (patched in place).
    stamp: u64,
    empty: Vec<u32>,
}

impl ColumnIndex {
    /// Row positions whose column `col` equals `v`, in row order.
    pub fn postings(&self, col: usize, v: &Value) -> &[u32] {
        self.by_col
            .get(col)
            .and_then(|m| m.get(v))
            .unwrap_or(&self.empty)
    }

    /// Number of distinct values in column `col`.
    pub fn distinct(&self, col: usize) -> usize {
        self.by_col.get(col).map_or(0, FxHashMap::len)
    }

    /// Patch the posting lists for a row appended at position `pos`
    /// (mirrors one step of the from-scratch build loop; widens the
    /// column vector if this row has higher arity than any before it).
    fn append(&mut self, row: &[Value], pos: u32) {
        if row.len() > self.by_col.len() {
            self.by_col.resize_with(row.len(), FxHashMap::default);
        }
        for (c, v) in row.iter().enumerate() {
            self.by_col[c].entry(*v).or_default().push(pos);
        }
    }
}

/// Shared read access to a relation's column index.
pub struct ColIndexRef<'a> {
    guard: RwLockReadGuard<'a, Option<ColumnIndex>>,
}

impl ColIndexRef<'_> {
    /// Row positions whose column `col` equals `v`, in row order.
    pub fn postings(&self, col: usize, v: &Value) -> &[u32] {
        self.guard
            .as_ref()
            .expect("column index ensured")
            .postings(col, v)
    }

    /// Number of distinct values in column `col`.
    pub fn distinct(&self, col: usize) -> usize {
        self.guard
            .as_ref()
            .expect("column index ensured")
            .distinct(col)
    }
}

/// A cheap, copyable view over one relation's rows (flat storage).
///
/// Supports `len`/`is_empty`, indexing (`rows[i]` yields `&[Value]`), and
/// iteration (`for row in rows`, `rows.iter()`).
#[derive(Clone, Copy, Debug)]
pub struct Rows<'a> {
    flat: &'a [Value],
    /// `n + 1` boundaries (`row i = flat[offsets[i]..offsets[i+1]]`), or
    /// empty for a relation with no rows.
    offsets: &'a [u32],
}

impl<'a> Rows<'a> {
    /// The empty view.
    pub fn empty() -> Rows<'a> {
        Rows {
            flat: &[],
            offsets: &[],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.offsets.len() < 2
    }

    /// The `i`-th row.
    pub fn row(&self, i: usize) -> &'a [Value] {
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate rows in insertion order.
    pub fn iter(&self) -> RowsIter<'a> {
        (*self).into_iter()
    }
}

impl Index<usize> for Rows<'_> {
    type Output = [Value];

    fn index(&self, i: usize) -> &[Value] {
        self.row(i)
    }
}

impl<'a> IntoIterator for Rows<'a> {
    type Item = &'a [Value];
    type IntoIter = RowsIter<'a>;

    fn into_iter(self) -> RowsIter<'a> {
        RowsIter { rows: self, at: 0 }
    }
}

impl<'a> IntoIterator for &Rows<'a> {
    type Item = &'a [Value];
    type IntoIter = RowsIter<'a>;

    fn into_iter(self) -> RowsIter<'a> {
        RowsIter { rows: *self, at: 0 }
    }
}

/// Iterator over a [`Rows`] view.
pub struct RowsIter<'a> {
    rows: Rows<'a>,
    at: usize,
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        if self.at < self.rows.len() {
            let row = self.rows.row(self.at);
            self.at += 1;
            Some(row)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rest = self.rows.len() - self.at;
        (rest, Some(rest))
    }
}

/// Tuples of one relation: an insertion-ordered set in flat storage.
#[derive(Debug)]
pub struct RelationData {
    /// All rows back to back.
    flat: Vec<Value>,
    /// `n + 1` row boundaries into `flat`.
    offsets: Vec<u32>,
    /// Lazy row-membership map (`row → position`); `None` until the first
    /// operation that needs set semantics. Bulk appends of
    /// caller-guaranteed-distinct rows skip it while unbuilt.
    lookup: RwLock<Option<FxHashMap<Vec<Value>, usize>>>,
    /// Bumped on every mutation (insert or remove).
    generation: u64,
    /// Lazy column index; `None` until first probe or after a remove.
    /// Appends patch it in place (generation-stamped).
    cols: RwLock<Option<ColumnIndex>>,
}

impl Default for RelationData {
    fn default() -> RelationData {
        RelationData {
            flat: Vec::new(),
            offsets: vec![0],
            lookup: RwLock::new(None),
            generation: 0,
            cols: RwLock::new(None),
        }
    }
}

impl Clone for RelationData {
    fn clone(&self) -> RelationData {
        RelationData {
            flat: self.flat.clone(),
            offsets: self.offsets.clone(),
            // The clone rebuilds lookup and index lazily.
            lookup: RwLock::new(None),
            generation: self.generation,
            cols: RwLock::new(None),
        }
    }
}

impl RelationData {
    /// The `i`-th row.
    fn row(&self, i: usize) -> &[Value] {
        &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Exclusive access to the lookup map, building it from the rows if
    /// absent.
    fn lookup_mut(&mut self) -> &mut FxHashMap<Vec<Value>, usize> {
        let built = self
            .lookup
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some();
        if !built {
            let mut map = FxHashMap::with_capacity_and_hasher(self.len(), Default::default());
            for i in 0..self.len() {
                map.insert(self.row(i).to_vec(), i);
            }
            *self
                .lookup
                .get_mut()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(map);
        }
        self.lookup
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_mut()
            .expect("lookup just ensured")
    }

    /// Build the lookup map if absent (shared-access path). Read-first
    /// double-checked locking like [`RelationData::col_index`], so
    /// concurrent readers don't serialize on the write lock once the map
    /// exists.
    fn ensure_lookup(&self) {
        if self
            .lookup
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some()
        {
            return;
        }
        let mut guard = self
            .lookup
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_none() {
            let mut map = FxHashMap::with_capacity_and_hasher(self.len(), Default::default());
            for i in 0..self.len() {
                map.insert(self.row(i).to_vec(), i);
            }
            *guard = Some(map);
        }
    }

    /// Append one row's values to the flat storage.
    fn push_row(&mut self, row: &[Value]) {
        self.flat.extend_from_slice(row);
        // Capacity contract: offsets are u32, so one relation holds at
        // most 2^32 − 1 values (tens of GiB). A genuinely reachable limit,
        // but an allocation-scale one — panicking with a clear message at
        // the boundary beats threading a Result through every insert path
        // for a situation the process cannot continue from anyway.
        let end = u32::try_from(self.flat.len()).expect("relation exceeds u32 value capacity");
        self.offsets.push(end);
    }

    /// Insert a row; returns `true` if it was new. Appends patch the
    /// column index in place (no rebuild) when it is already built.
    pub fn insert(&mut self, row: Vec<Value>) -> bool {
        let pos = self.len();
        if self.lookup_mut().contains_key(&row) {
            return false;
        }
        self.push_row(&row);
        self.generation += 1;
        if let Some(idx) = self
            .cols
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_mut()
        {
            idx.append(&row, pos as u32);
            idx.stamp = self.generation;
        }
        self.lookup_mut().insert(row, pos);
        true
    }

    /// Append a block of equal-arity rows (`values.len() % arity == 0`,
    /// `arity > 0`) that the caller guarantees are distinct — from each
    /// other *and* from every row already present. Skips the membership
    /// map entirely when it is not built (it stays lazy), making this the
    /// copy-only fast path of batch producers like the chase engine, whose
    /// fresh-null tuples are distinct by construction.
    ///
    /// Distinctness is verified with a `debug_assert`; violating it in
    /// release builds breaks the instance's set semantics.
    pub fn extend_distinct(&mut self, arity: usize, values: &[Value]) {
        assert!(arity > 0, "extend_distinct requires positive arity");
        debug_assert_eq!(values.len() % arity, 0, "ragged extend_distinct block");
        #[cfg(debug_assertions)]
        {
            let mut seen: std::collections::HashSet<&[Value]> =
                (0..self.len()).map(|i| self.row(i)).collect();
            for row in values.chunks(arity) {
                debug_assert!(seen.insert(row), "extend_distinct: duplicate row {row:?}");
            }
        }
        if values.is_empty() {
            return;
        }
        let n = values.len() / arity;
        self.generation += n as u64;
        let map_built = self
            .lookup
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some();
        let cols_built = self
            .cols
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .is_some();
        if map_built || cols_built {
            for (k, row) in values.chunks(arity).enumerate() {
                let pos = self.len() + k;
                if map_built {
                    self.lookup
                        .get_mut()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .as_mut()
                        .expect("checked above")
                        .insert(row.to_vec(), pos);
                }
                if cols_built {
                    let idx = self
                        .cols
                        .get_mut()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .as_mut()
                        .expect("checked above");
                    idx.append(row, pos as u32);
                    idx.stamp = self.generation;
                }
            }
        }
        self.flat.extend_from_slice(values);
        // Invariant: `offsets` is constructed with one element and only
        // ever pushed to, so `last()` cannot be `None`.
        let base = *self.offsets.last().expect("offsets never empty") as usize;
        for k in 1..=n {
            // Same u32 capacity contract as `push_row`.
            let end = u32::try_from(base + k * arity).expect("relation exceeds u32 value capacity");
            self.offsets.push(end);
        }
    }

    /// Remove a row; returns `true` if it was present. O(n): row positions
    /// shift, so positional entries and the column index are rebuilt.
    pub fn remove(&mut self, row: &[Value]) -> bool {
        let Some(pos) = self.lookup_mut().remove(row) else {
            return false;
        };
        let start = self.offsets[pos] as usize;
        let end = self.offsets[pos + 1] as usize;
        let width = (end - start) as u32;
        self.flat.drain(start..end);
        self.offsets.remove(pos + 1);
        for o in &mut self.offsets[pos + 1..] {
            *o -= width;
        }
        // Re-point the shifted rows' positions.
        let n = self.len();
        let lookup = self
            .lookup
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_mut()
            // Invariant: `lookup_mut` above built the map before the
            // positional `remove` could succeed.
            .expect("lookup ensured by remove");
        for i in pos..n {
            let r = &self.flat[self.offsets[i] as usize..self.offsets[i + 1] as usize];
            // Invariant: the map was built from (or kept in sync with)
            // exactly these rows, so every surviving row has an entry.
            *lookup.get_mut(r).expect("lookup entry for surviving row") = i;
        }
        self.generation += 1;
        self.invalidate();
        true
    }

    /// Membership test.
    pub fn contains(&self, row: &[Value]) -> bool {
        self.ensure_lookup();
        self.lookup
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .expect("lookup just ensured")
            .contains_key(row)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Rows in insertion order.
    pub fn rows(&self) -> Rows<'_> {
        if self.is_empty() {
            Rows::empty()
        } else {
            Rows {
                flat: &self.flat,
                offsets: &self.offsets,
            }
        }
    }

    /// Current mutation generation (bumped on every insert/remove).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// `(built_at, stamp)` generations of the column index, or `None` if
    /// it is not currently built. `built_at < stamp` means the index was
    /// patched in place since its last from-scratch build.
    pub fn index_stamp(&self) -> Option<(u64, u64)> {
        self.cols
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .as_ref()
            .map(|idx| (idx.built_at, idx.stamp))
    }

    /// Drop the column index (only removes need this: row positions shift).
    fn invalidate(&mut self) {
        *self
            .cols
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = None;
    }

    /// Build the column index if absent.
    fn ensure_col_index(&self) {
        let mut guard = self
            .cols
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_none() {
            let mut idx = ColumnIndex {
                built_at: self.generation,
                stamp: self.generation,
                ..ColumnIndex::default()
            };
            for (i, row) in self.rows().iter().enumerate() {
                idx.append(row, i as u32);
            }
            *guard = Some(idx);
        }
    }

    /// Read access to the column index, building it if needed.
    pub fn col_index(&self) -> ColIndexRef<'_> {
        loop {
            let guard = self
                .cols
                .read()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if guard.is_some() {
                return ColIndexRef { guard };
            }
            drop(guard);
            self.ensure_col_index();
        }
    }
}

/// A database instance: relation id → set of rows.
#[derive(Clone, Debug, Default)]
pub struct Instance {
    rels: FxHashMap<RelId, RelationData>,
}

impl Instance {
    /// An empty instance.
    pub fn new() -> Instance {
        Instance::default()
    }

    /// Insert a tuple; returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.rels.entry(t.rel).or_default().insert(t.args)
    }

    /// Insert a ground tuple built from string constants.
    pub fn insert_ground(&mut self, rel: RelId, consts: &[&str]) -> bool {
        self.insert(Tuple::ground(rel, consts))
    }

    /// Remove a tuple; returns `true` if it was present.
    ///
    /// O(n) in the relation size (rebuilds the positional index); removal is
    /// rare (only the noise injector uses it).
    pub fn remove(&mut self, rel: RelId, row: &[Value]) -> bool {
        self.rels.get_mut(&rel).is_some_and(|d| d.remove(row))
    }

    /// Append a block of equal-arity rows to `rel` which the caller
    /// guarantees are distinct from each other and from every present
    /// row — the batch-producer fast path (see
    /// [`RelationData::extend_distinct`]).
    pub fn extend_distinct(&mut self, rel: RelId, arity: usize, values: &[Value]) {
        if !values.is_empty() {
            self.rels
                .entry(rel)
                .or_default()
                .extend_distinct(arity, values);
        }
    }

    /// Read access to one relation's column index (`None` when the relation
    /// has no rows). Built lazily; appends patch it in place, removes
    /// invalidate it.
    pub fn col_index(&self, rel: RelId) -> Option<ColIndexRef<'_>> {
        self.rels.get(&rel).map(RelationData::col_index)
    }

    /// `(built_at, stamp)` generations of one relation's column index (see
    /// [`RelationData::index_stamp`]); `None` if the relation is unknown
    /// or its index is not built.
    pub fn index_stamp(&self, rel: RelId) -> Option<(u64, u64)> {
        self.rels.get(&rel).and_then(RelationData::index_stamp)
    }

    /// Membership test.
    pub fn contains(&self, rel: RelId, row: &[Value]) -> bool {
        self.rels.get(&rel).is_some_and(|d| d.contains(row))
    }

    /// Membership test for a [`Tuple`].
    pub fn contains_tuple(&self, t: &Tuple) -> bool {
        self.contains(t.rel, &t.args)
    }

    /// Rows of one relation (empty view if the relation has no rows).
    pub fn rows(&self, rel: RelId) -> Rows<'_> {
        self.rels
            .get(&rel)
            .map_or_else(Rows::empty, RelationData::rows)
    }

    /// Total number of tuples across all relations.
    pub fn total_len(&self) -> usize {
        self.rels.values().map(RelationData::len).sum()
    }

    /// True iff the instance holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.total_len() == 0
    }

    /// Relation ids with at least one row, in unspecified order.
    pub fn populated_rels(&self) -> impl Iterator<Item = RelId> + '_ {
        self.rels
            .iter()
            .filter(|(_, d)| !d.is_empty())
            .map(|(&r, _)| r)
    }

    /// Iterate all tuples as `(RelId, &row)`, grouped by relation.
    pub fn iter_all(&self) -> impl Iterator<Item = (RelId, &[Value])> + '_ {
        let mut rels: Vec<_> = self.rels.iter().collect();
        rels.sort_by_key(|(r, _)| **r);
        rels.into_iter()
            .flat_map(|(&r, d)| d.rows().into_iter().map(move |row| (r, row)))
    }

    /// Collect all tuples into owned [`Tuple`]s (sorted by relation id, then
    /// insertion order) — convenient for assertions in tests.
    pub fn to_tuples(&self) -> Vec<Tuple> {
        self.iter_all()
            .map(|(r, row)| Tuple::new(r, row.to_vec()))
            .collect()
    }

    /// Largest null id occurring in the instance plus one (0 if ground):
    /// the safe starting point for a [`crate::value::NullFactory`] extending
    /// this instance.
    pub fn next_null_id(&self) -> u32 {
        self.iter_all()
            .flat_map(|(_, row)| row.iter())
            .filter_map(|v| v.as_null())
            .map(|n| n.0 + 1)
            .max()
            .unwrap_or(0)
    }

    /// Union: insert every tuple of `other` into `self`.
    pub fn absorb(&mut self, other: &Instance) {
        for (rel, row) in other.iter_all() {
            self.insert(Tuple::new(rel, row.to_vec()));
        }
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (rel, row) in self.iter_all() {
            writeln!(f, "{}", Tuple::new(rel, row.to_vec()))?;
        }
        Ok(())
    }
}

impl FromIterator<Tuple> for Instance {
    fn from_iter<I: IntoIterator<Item = Tuple>>(iter: I) -> Instance {
        let mut inst = Instance::new();
        for t in iter {
            inst.insert(t);
        }
        inst
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{NullId, Value};

    #[test]
    fn insert_dedups() {
        let mut inst = Instance::new();
        assert!(inst.insert_ground(RelId(0), &["a", "b"]));
        assert!(!inst.insert_ground(RelId(0), &["a", "b"]));
        assert!(inst.insert_ground(RelId(0), &["a", "c"]));
        assert_eq!(inst.total_len(), 2);
    }

    #[test]
    fn contains_and_rows() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(1), &["x"]);
        assert!(inst.contains(RelId(1), &[Value::constant("x")]));
        assert!(!inst.contains(RelId(1), &[Value::constant("y")]));
        assert!(!inst.contains(RelId(9), &[Value::constant("x")]));
        assert_eq!(inst.rows(RelId(1)).len(), 1);
        assert!(inst.rows(RelId(9)).is_empty());
    }

    #[test]
    fn rows_view_indexes_and_iterates() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a", "b"]);
        inst.insert_ground(RelId(0), &["c", "d"]);
        let rows = inst.rows(RelId(0));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1][0], Value::constant("c"));
        assert_eq!(rows.row(0), &[Value::constant("a"), Value::constant("b")]);
        let collected: Vec<&[Value]> = rows.iter().collect();
        assert_eq!(collected.len(), 2);
        let mut n = 0;
        for row in rows {
            assert_eq!(row.len(), 2);
            n += 1;
        }
        assert_eq!(n, 2);
    }

    #[test]
    fn mixed_arity_rows_round_trip() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a"]);
        inst.insert_ground(RelId(0), &["b", "c"]);
        inst.insert_ground(RelId(0), &["d"]);
        let rows = inst.rows(RelId(0));
        assert_eq!(rows.row(0).len(), 1);
        assert_eq!(rows.row(1).len(), 2);
        assert_eq!(rows.row(2), &[Value::constant("d")]);
    }

    #[test]
    fn remove_keeps_index_consistent() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a"]);
        inst.insert_ground(RelId(0), &["b"]);
        inst.insert_ground(RelId(0), &["c"]);
        assert!(inst.remove(RelId(0), &[Value::constant("b")]));
        assert!(!inst.remove(RelId(0), &[Value::constant("b")]));
        assert!(inst.contains(RelId(0), &[Value::constant("c")]));
        assert!(inst.contains(RelId(0), &[Value::constant("a")]));
        assert_eq!(inst.total_len(), 2);
        // Re-insert after remove must work (index rebuilt correctly).
        assert!(inst.insert_ground(RelId(0), &["b"]));
        assert_eq!(inst.total_len(), 3);
    }

    #[test]
    fn remove_of_wide_row_shifts_offsets() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a", "x", "y"]);
        inst.insert_ground(RelId(0), &["b", "p", "q"]);
        inst.insert_ground(RelId(0), &["c", "r", "s"]);
        assert!(inst.remove(
            RelId(0),
            &[
                Value::constant("a"),
                Value::constant("x"),
                Value::constant("y")
            ]
        ));
        let rows = inst.rows(RelId(0));
        assert_eq!(rows.row(0)[0], Value::constant("b"));
        assert_eq!(rows.row(1)[0], Value::constant("c"));
        assert!(inst.contains(
            RelId(0),
            &[
                Value::constant("c"),
                Value::constant("r"),
                Value::constant("s")
            ]
        ));
    }

    #[test]
    fn col_index_postings_track_rows() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a", "x"]);
        inst.insert_ground(RelId(0), &["a", "y"]);
        inst.insert_ground(RelId(0), &["b", "x"]);
        let idx = inst.col_index(RelId(0)).unwrap();
        assert_eq!(idx.postings(0, &Value::constant("a")), &[0, 1]);
        assert_eq!(idx.postings(1, &Value::constant("x")), &[0, 2]);
        assert_eq!(idx.postings(0, &Value::constant("zzz")), &[] as &[u32]);
        assert_eq!(idx.distinct(0), 2);
        assert!(inst.col_index(RelId(7)).is_none());
    }

    #[test]
    fn col_index_patched_by_insert_invalidated_by_remove() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a"]);
        assert_eq!(
            inst.col_index(RelId(0))
                .unwrap()
                .postings(0, &Value::constant("a"))
                .len(),
            1
        );
        let (built_at, _) = inst.index_stamp(RelId(0)).unwrap();
        // Insert after the index was built: patched in place, no rebuild —
        // even when the new row widens the relation's arity.
        inst.insert_ground(RelId(0), &["a", "pad"]); // distinct row, same first col
        assert_eq!(
            inst.col_index(RelId(0))
                .unwrap()
                .postings(0, &Value::constant("a"))
                .len(),
            2
        );
        let (built_after, stamp) = inst.index_stamp(RelId(0)).unwrap();
        assert_eq!(built_at, built_after, "insert must not rebuild the index");
        assert!(stamp > built_at, "patched index is re-stamped");
        // Remove shifts row positions: the index is dropped and rebuilt,
        // and the rebuilt postings must follow the shifted rows.
        inst.insert_ground(RelId(0), &["b"]);
        assert!(inst.remove(RelId(0), &[Value::constant("a")]));
        assert!(
            inst.index_stamp(RelId(0)).is_none(),
            "remove invalidates the index"
        );
        let idx = inst.col_index(RelId(0)).unwrap();
        assert_eq!(idx.postings(0, &Value::constant("a")).len(), 1);
        assert_eq!(idx.postings(0, &Value::constant("b")).len(), 1);
        let b_pos = idx.postings(0, &Value::constant("b"))[0] as usize;
        assert_eq!(inst.rows(RelId(0))[b_pos][0], Value::constant("b"));
    }

    #[test]
    fn cloned_instance_rebuilds_its_own_col_index() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a"]);
        let _ = inst.col_index(RelId(0));
        let mut copy = inst.clone();
        copy.insert_ground(RelId(0), &["b"]);
        assert_eq!(
            copy.col_index(RelId(0))
                .unwrap()
                .postings(0, &Value::constant("b"))
                .len(),
            1
        );
        assert_eq!(
            inst.col_index(RelId(0))
                .unwrap()
                .postings(0, &Value::constant("b"))
                .len(),
            0
        );
    }

    #[test]
    fn extend_distinct_appends_and_stays_a_set() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a"]);
        inst.extend_distinct(RelId(0), 1, &[Value::constant("b"), Value::constant("c")]);
        assert_eq!(inst.total_len(), 3);
        // Set semantics survive the bulk append: membership and dedup see
        // the raw-appended rows (the lookup map is rebuilt lazily).
        assert!(inst.contains(RelId(0), &[Value::constant("b")]));
        assert!(!inst.insert_ground(RelId(0), &["c"]));
        assert!(inst.insert_ground(RelId(0), &["d"]));
        // Bulk append into a relation whose lookup is already built keeps
        // the map consistent.
        inst.extend_distinct(RelId(0), 1, &[Value::constant("e")]);
        assert!(inst.contains(RelId(0), &[Value::constant("e")]));
        assert!(!inst.insert_ground(RelId(0), &["e"]));
        assert_eq!(inst.total_len(), 5);
        // A built column index is patched by the bulk path too.
        let before = inst
            .col_index(RelId(0))
            .unwrap()
            .postings(0, &Value::constant("f"))
            .len();
        assert_eq!(before, 0);
        inst.extend_distinct(RelId(0), 1, &[Value::constant("f")]);
        assert_eq!(
            inst.col_index(RelId(0))
                .unwrap()
                .postings(0, &Value::constant("f"))
                .len(),
            1
        );
        // Empty appends are no-ops.
        let stamp = inst.index_stamp(RelId(0));
        inst.extend_distinct(RelId(0), 1, &[]);
        assert_eq!(inst.index_stamp(RelId(0)), stamp);
    }

    #[test]
    fn next_null_id_tracks_maximum() {
        let mut inst = Instance::new();
        assert_eq!(inst.next_null_id(), 0);
        inst.insert(Tuple::new(
            RelId(0),
            vec![Value::constant("a"), Value::Null(NullId(4))],
        ));
        assert_eq!(inst.next_null_id(), 5);
    }

    #[test]
    fn absorb_unions() {
        let mut a = Instance::new();
        a.insert_ground(RelId(0), &["x"]);
        let mut b = Instance::new();
        b.insert_ground(RelId(0), &["x"]);
        b.insert_ground(RelId(1), &["y"]);
        a.absorb(&b);
        assert_eq!(a.total_len(), 2);
    }

    #[test]
    fn iter_all_sorted_by_relation() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(3), &["z"]);
        inst.insert_ground(RelId(1), &["a"]);
        let rels: Vec<RelId> = inst.iter_all().map(|(r, _)| r).collect();
        assert_eq!(rels, vec![RelId(1), RelId(3)]);
    }

    #[test]
    fn from_iterator_collects() {
        let inst: Instance = vec![
            Tuple::ground(RelId(0), &["a"]),
            Tuple::ground(RelId(0), &["a"]),
            Tuple::ground(RelId(1), &["b"]),
        ]
        .into_iter()
        .collect();
        assert_eq!(inst.total_len(), 2);
    }
}

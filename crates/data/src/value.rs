//! Values: constants and labeled nulls.
//!
//! A data-exchange instance over a schema contains *ground* values
//! (constants) and *labeled nulls* introduced by existential quantifiers
//! during the chase. Nulls are identified by a [`NullId`]; two occurrences of
//! the same `NullId` denote the same unknown value (this sharing is exactly
//! what the paper's `covers` support rule exploits).

use crate::symbols::Sym;
use std::fmt;

/// Identifier of a labeled null. Fresh ids are handed out by
/// [`NullFactory`]; uniqueness is per factory (one factory per chase).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NullId(pub u32);

/// A single value in a tuple: either an interned constant or a labeled null.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A ground constant (interned string).
    Const(Sym),
    /// A labeled null, as produced by chasing an existential variable.
    Null(NullId),
}

impl Value {
    /// Convenience constructor interning `s`.
    pub fn constant(s: &str) -> Value {
        Value::Const(Sym::new(s))
    }

    /// True iff this value is a labeled null.
    pub fn is_null(self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// True iff this value is a ground constant.
    pub fn is_const(self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// The constant symbol, if ground.
    pub fn as_const(self) -> Option<Sym> {
        match self {
            Value::Const(s) => Some(s),
            Value::Null(_) => None,
        }
    }

    /// The null id, if a null.
    pub fn as_null(self) -> Option<NullId> {
        match self {
            Value::Null(n) => Some(n),
            Value::Const(_) => None,
        }
    }
}

impl From<Sym> for Value {
    fn from(s: Sym) -> Value {
        Value::Const(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::constant(s)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    /// Constants print verbatim, nulls as `_Nn`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(s) => write!(f, "{s}"),
            Value::Null(NullId(n)) => write!(f, "_N{n}"),
        }
    }
}

/// Hands out fresh labeled nulls.
///
/// A chase run owns one factory so that nulls produced for different tgd
/// firings are globally distinct within the produced instance.
#[derive(Debug, Default, Clone)]
pub struct NullFactory {
    next: u32,
}

impl NullFactory {
    /// A factory starting at null id 0.
    pub fn new() -> NullFactory {
        NullFactory { next: 0 }
    }

    /// A factory whose first null id is `start` — used when extending an
    /// instance that already contains nulls.
    pub fn starting_at(start: u32) -> NullFactory {
        NullFactory { next: start }
    }

    /// Produce a fresh null, never returned before by this factory.
    pub fn fresh(&mut self) -> NullId {
        let id = NullId(self.next);
        self.next = self.next.checked_add(1).expect("null id overflow");
        id
    }

    /// Reserve a contiguous block of `n` fresh null ids, returning the
    /// first. Equivalent to `n` calls to [`NullFactory::fresh`] — used by
    /// batch firers that assign null ids arithmetically per firing.
    pub fn reserve(&mut self, n: u32) -> u32 {
        let start = self.next;
        self.next = self.next.checked_add(n).expect("null id overflow");
        start
    }

    /// The id the next call to [`NullFactory::fresh`] will return.
    pub fn peek_next(&self) -> u32 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_classification() {
        let c = Value::constant("IBM");
        let n = Value::Null(NullId(3));
        assert!(c.is_const() && !c.is_null());
        assert!(n.is_null() && !n.is_const());
        assert_eq!(c.as_const(), Some(Sym::new("IBM")));
        assert_eq!(n.as_null(), Some(NullId(3)));
        assert_eq!(c.as_null(), None);
        assert_eq!(n.as_const(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::constant("SAP").to_string(), "SAP");
        assert_eq!(Value::Null(NullId(7)).to_string(), "_N7");
    }

    #[test]
    fn null_factory_is_monotone_and_fresh() {
        let mut f = NullFactory::new();
        let a = f.fresh();
        let b = f.fresh();
        assert_ne!(a, b);
        assert_eq!(a, NullId(0));
        assert_eq!(b, NullId(1));
        let mut g = NullFactory::starting_at(10);
        assert_eq!(g.fresh(), NullId(10));
        assert_eq!(g.peek_next(), 11);
    }

    #[test]
    fn reserve_equals_repeated_fresh() {
        let mut a = NullFactory::new();
        let start = a.reserve(3);
        assert_eq!(start, 0);
        assert_eq!(a.fresh(), NullId(3));
        let mut b = NullFactory::new();
        for i in 0..3 {
            assert_eq!(b.fresh(), NullId(i));
        }
        assert_eq!(a.peek_next(), b.peek_next() + 1);
    }

    #[test]
    fn equality_follows_ids_not_provenance() {
        assert_eq!(Value::Null(NullId(1)), Value::Null(NullId(1)));
        assert_ne!(Value::Null(NullId(1)), Value::Null(NullId(2)));
        assert_eq!(Value::constant("x"), Value::constant("x"));
    }
}

//! Tuples: a relation id plus a vector of values.

use crate::schema::RelId;
use crate::value::Value;
use std::fmt;

/// A (possibly null-containing) tuple over some relation.
///
/// The schema is not stored; callers pair tuples with the schema that owns
/// `rel` (instances enforce arity on insert).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Tuple {
    /// Relation the tuple belongs to.
    pub rel: RelId,
    /// Column values.
    pub args: Vec<Value>,
}

impl Tuple {
    /// Construct a tuple.
    pub fn new(rel: RelId, args: Vec<Value>) -> Tuple {
        Tuple { rel, args }
    }

    /// Construct a ground tuple from string constants.
    pub fn ground(rel: RelId, consts: &[&str]) -> Tuple {
        Tuple {
            rel,
            args: consts.iter().map(|c| Value::constant(c)).collect(),
        }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// True iff the tuple contains no labeled nulls.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(|v| v.is_const())
    }

    /// Iterator over the positions holding nulls.
    pub fn null_positions(&self) -> impl Iterator<Item = usize> + '_ {
        self.args
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_null())
            .map(|(i, _)| i)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}(", self.rel.0)?;
        for (i, v) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullId;

    #[test]
    fn ground_detection() {
        let t = Tuple::ground(RelId(0), &["a", "b"]);
        assert!(t.is_ground());
        assert_eq!(t.arity(), 2);
        let u = Tuple::new(RelId(0), vec![Value::constant("a"), Value::Null(NullId(0))]);
        assert!(!u.is_ground());
        assert_eq!(u.null_positions().collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn display_is_compact() {
        let t = Tuple::new(
            RelId(2),
            vec![Value::constant("ML"), Value::Null(NullId(4))],
        );
        assert_eq!(t.to_string(), "r2(ML, _N4)");
    }

    #[test]
    fn equality_is_structural() {
        let a = Tuple::ground(RelId(1), &["x", "y"]);
        let b = Tuple::ground(RelId(1), &["x", "y"]);
        let c = Tuple::ground(RelId(2), &["x", "y"]);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}

//! A small, fast, non-cryptographic hasher in the style of rustc's FxHash.
//!
//! The algorithm (multiply + rotate word mixing) is the well-known public
//! domain "Fx" scheme used throughout rustc. We re-implement it here because
//! `rustc-hash` is not part of this project's allowed dependency set, and the
//! default SipHash is measurably slow for the short integer-heavy keys
//! (interned symbols, relation ids, value vectors) this workspace hashes in
//! hot loops (chase, grounding, coverage computation).

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant (from FxHash / Firefox's hash combiner).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, DoS-unsafe hasher for internal data structures.
///
/// Never expose hash tables keyed by untrusted external input with this
/// hasher; everything in this workspace hashes data we generated ourselves.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Consume 8 bytes at a time, then the tail.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(tail));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&vec![1u32, 2, 3]), hash_of(&vec![1u32, 2, 3]));
    }

    #[test]
    fn different_values_usually_differ() {
        assert_ne!(hash_of(&1u64), hash_of(&2u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
    }

    #[test]
    fn byte_tail_is_hashed() {
        // Regression guard: remainder bytes must contribute to the hash.
        assert_ne!(
            hash_of(&b"123456789".as_slice()),
            hash_of(&b"123456780".as_slice())
        );
    }

    #[test]
    fn map_roundtrip() {
        let mut map: FxHashMap<String, i32> = FxHashMap::default();
        for i in 0..1000 {
            map.insert(format!("key{i}"), i);
        }
        for i in 0..1000 {
            assert_eq!(map.get(&format!("key{i}")), Some(&i));
        }
    }
}

//! Telemetry level control: the `CMS_OBS` environment variable and a
//! programmatic override.
//!
//! The level is read from the environment exactly once (warn-once on a
//! malformed value, mirroring the ADMM env knobs) and cached in a single
//! atomic byte, so the disabled fast path is one relaxed load and a
//! compare.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// How much telemetry the process records, in strictly increasing cost.
///
/// Each level includes everything below it: `Journal` also records spans
/// and metrics, `Spans` also records metrics, and so on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ObsLevel {
    /// No telemetry. Every recording call is a relaxed atomic load and
    /// an untaken branch.
    Off = 0,
    /// Metrics only: counters, gauges and histograms in the registry.
    Stats = 1,
    /// Metrics plus hierarchical wall/CPU-time spans.
    Spans = 2,
    /// Everything: metrics, spans and the structured event journal.
    Journal = 3,
}

impl ObsLevel {
    /// Parse a `CMS_OBS` value. Case-insensitive; `None` on anything
    /// that is not one of the four documented names.
    pub fn parse(raw: &str) -> Option<ObsLevel> {
        match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "" => Some(ObsLevel::Off),
            "stats" => Some(ObsLevel::Stats),
            "spans" => Some(ObsLevel::Spans),
            "journal" => Some(ObsLevel::Journal),
            _ => None,
        }
    }

    /// The lowercase name this level parses from.
    pub fn name(self) -> &'static str {
        match self {
            ObsLevel::Off => "off",
            ObsLevel::Stats => "stats",
            ObsLevel::Spans => "spans",
            ObsLevel::Journal => "journal",
        }
    }

    fn from_u8(v: u8) -> ObsLevel {
        match v {
            1 => ObsLevel::Stats,
            2 => ObsLevel::Spans,
            3 => ObsLevel::Journal,
            _ => ObsLevel::Off,
        }
    }
}

/// Sentinel meaning "not yet initialised from the environment".
const UNSET: u8 = u8::MAX;

static LEVEL: AtomicU8 = AtomicU8::new(UNSET);
static ENV_LEVEL: OnceLock<ObsLevel> = OnceLock::new();

fn env_level() -> ObsLevel {
    *ENV_LEVEL.get_or_init(|| match std::env::var("CMS_OBS") {
        Ok(raw) => ObsLevel::parse(&raw).unwrap_or_else(|| {
            eprintln!("warning: CMS_OBS={raw:?} is not off/stats/spans/journal; telemetry off");
            ObsLevel::Off
        }),
        Err(_) => ObsLevel::Off,
    })
}

/// The active telemetry level.
///
/// First call resolves `CMS_OBS` (or a prior [`set_level_override`]);
/// every later call is a single relaxed atomic load.
#[inline]
pub fn level() -> ObsLevel {
    let v = LEVEL.load(Ordering::Relaxed);
    if v != UNSET {
        return ObsLevel::from_u8(v);
    }
    let resolved = env_level();
    // Racing initialisers all resolve the same OnceLock value, and an
    // override that lands in between simply wins the store.
    let _ = LEVEL.compare_exchange(UNSET, resolved as u8, Ordering::Relaxed, Ordering::Relaxed);
    ObsLevel::from_u8(LEVEL.load(Ordering::Relaxed))
}

/// True when the active level is at least `want`. The hot-path guard.
#[inline]
pub fn enabled(want: ObsLevel) -> bool {
    level() >= want
}

/// Programmatically force the level, overriding `CMS_OBS`.
///
/// Exists so benches and tests can compare levels within one process
/// (the environment is only consulted once). Takes effect for all
/// threads on their next [`level`] call.
pub fn set_level_override(level: ObsLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Drop a [`set_level_override`] and fall back to the `CMS_OBS`-derived
/// level.
pub fn clear_level_override() {
    LEVEL.store(env_level() as u8, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_documented_names_case_insensitively() {
        assert_eq!(ObsLevel::parse("off"), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse("STATS"), Some(ObsLevel::Stats));
        assert_eq!(ObsLevel::parse(" Spans "), Some(ObsLevel::Spans));
        assert_eq!(ObsLevel::parse("journal"), Some(ObsLevel::Journal));
        assert_eq!(ObsLevel::parse(""), Some(ObsLevel::Off));
        assert_eq!(ObsLevel::parse("verbose"), None);
    }

    #[test]
    fn levels_are_cumulative() {
        assert!(ObsLevel::Journal > ObsLevel::Spans);
        assert!(ObsLevel::Spans > ObsLevel::Stats);
        assert!(ObsLevel::Stats > ObsLevel::Off);
    }

    #[test]
    fn names_round_trip() {
        for l in [
            ObsLevel::Off,
            ObsLevel::Stats,
            ObsLevel::Spans,
            ObsLevel::Journal,
        ] {
            assert_eq!(ObsLevel::parse(l.name()), Some(l));
        }
    }
}

//! Structured event journal: typed records for chase, ground, reground,
//! solve, degradation and fault events, exportable as JSONL and as a
//! human-readable tree.
//!
//! Events are only recorded at [`ObsLevel::Journal`]. Each record
//! carries a process-wide sequence number, a nanosecond timestamp from
//! the telemetry epoch, and the emitting thread's current span ID so a
//! journal can be interleaved with the span tree.
//!
//! Storage is the bounded flight-recorder ring ([`crate::ring`]): the
//! journal keeps the **last** `CMS_OBS_RING` events, overwriting the
//! oldest and counting every eviction in [`events_dropped`], so a
//! long-running process holds bounded memory and loss stays visible.
//! [`snapshot_journal`] clones the live window without disturbing
//! capture; [`drain_journal_snapshot`] takes it together with a
//! [`JournalHeader`] carrying the exact drop accounting, and
//! [`dump_on_degradation`] persists the snapshot to `CMS_OBS_DUMP`
//! whenever the degradation ladder fires rung ≥ 2 — a crash-style
//! black box of the last N events before things went wrong.

use crate::json::{self, escape_str, fmt_f64, Json};
use crate::level::{enabled, ObsLevel};
use crate::ring::{ring_capacity, Ring};
use crate::span::{current_span, now_ns, SpanId, SpanRecord};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// The numeric counters of one grounding (a mirror of `GroundStats`
/// in `cms-psl`, which this crate cannot depend on).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GroundCounters {
    /// Substitutions enumerated.
    pub substitutions: u64,
    /// Potentials emitted.
    pub potentials: u64,
    /// Hard constraints emitted.
    pub constraints: u64,
    /// Groundings pruned as trivially satisfied.
    pub pruned: u64,
    /// Objective contribution of constant groundings.
    pub constant_loss: f64,
    /// Candidate atoms reached through index probes.
    pub candidates_probed: u64,
    /// Candidate atoms reached through full pool scans.
    pub candidates_scanned: u64,
    /// Ground terms spliced unchanged by a reground.
    pub terms_reused: u64,
    /// Ground terms recomputed by a reground.
    pub terms_recomputed: u64,
    /// Arithmetic free bindings spliced without re-folding.
    pub arith_bindings_spliced: u64,
    /// Self-healing fresh-ground fallbacks absorbed.
    pub fallback_fresh_grounds: u64,
    /// ADMM watchdog restarts absorbed.
    pub solver_restarts: u64,
    /// Raw delta entries coalesced away before the reground.
    pub entries_coalesced: u64,
    /// Batch entries deduplicated into already-scheduled reground work.
    pub sources_deduped: u64,
    /// Wall time, nanoseconds.
    pub wall_ns: u64,
}

/// One degradation-ladder rung, as a typed record (previously a
/// `note_degradation` string in `cms-select`).
#[derive(Debug, Clone, PartialEq)]
pub enum DegradationRung {
    /// Rung 1: non-finite carried duals were dropped before the warm
    /// solve.
    DroppedNonFiniteDuals {
        /// Dual terms discarded.
        dropped: u64,
    },
    /// Rung 2: the incremental reground was rejected and a fresh ground
    /// ran instead.
    FreshGround {
        /// The reground error that forced the fallback.
        reason: String,
    },
    /// Rung 3: a non-nominal warm solve was retried cold.
    ColdSolve {
        /// Health of the abandoned warm solve.
        health: String,
    },
    /// Rung 4: fresh ground *and* cold solve after rung 3 stayed
    /// non-nominal.
    FreshGroundColdSolve {
        /// Health of the abandoned rung-3 solve.
        health: String,
    },
}

impl DegradationRung {
    /// Ladder position, 1-based.
    pub fn rung(&self) -> u32 {
        match self {
            DegradationRung::DroppedNonFiniteDuals { .. } => 1,
            DegradationRung::FreshGround { .. } => 2,
            DegradationRung::ColdSolve { .. } => 3,
            DegradationRung::FreshGroundColdSolve { .. } => 4,
        }
    }

    /// Human-readable rendering of this rung, used in degradation notes.
    pub fn render(&self) -> String {
        match self {
            DegradationRung::DroppedNonFiniteDuals { dropped } => {
                format!("dropped {dropped} non-finite dual terms")
            }
            DegradationRung::FreshGround { reason } => {
                format!("reground rejected ({reason}); fell back to fresh ground")
            }
            DegradationRung::ColdSolve { health } => {
                format!("warm solve {health}; retried cold")
            }
            DegradationRung::FreshGroundColdSolve { health } => {
                format!("cold solve {health}; fresh ground + cold solve")
            }
        }
    }
}

/// A typed telemetry event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One chase-engine run (mirrors `ChaseStats` in `cms-tgd`).
    Chase {
        /// Candidate tgds chased.
        tgds: u64,
        /// Body-prefix trie nodes.
        trie_nodes: u64,
        /// Partial-binding extensions evaluated.
        prefix_bindings_computed: u64,
        /// Extensions shared through the trie.
        prefix_bindings_reused: u64,
        /// Rows reached through index probes.
        candidates_probed: u64,
        /// Rows reached through full scans.
        candidates_scanned: u64,
        /// Head instantiations.
        firings: u64,
        /// New tuples inserted.
        tuples_emitted: u64,
        /// Wall time, nanoseconds.
        wall_ns: u64,
    },
    /// One rule grounded from scratch.
    Ground {
        /// Rule name (`rule#i` or the arithmetic rule's name).
        rule: String,
        /// The rule's counters.
        counters: GroundCounters,
    },
    /// One incremental reground of a whole program.
    Reground {
        /// Rules in the program.
        rules: u64,
        /// Totals across all rules after the splice.
        counters: GroundCounters,
    },
    /// One ADMM solve (mirrors `AdmmSolution` in `cms-psl`).
    Solve {
        /// Iterations executed.
        iterations: u64,
        /// True iff residuals dropped below tolerance.
        converged: bool,
        /// Watchdog restarts.
        restarts: u64,
        /// `SolveHealth` rendering, e.g. `converged` or `stalled@40`.
        health: String,
        /// Objective at the solution.
        objective: f64,
        /// Largest hard-constraint violation.
        max_violation: f64,
        /// Wall time in the local step, nanoseconds.
        local_ns: u64,
        /// Wall time in the consensus step, nanoseconds.
        consensus_ns: u64,
    },
    /// One degradation-ladder rung fired.
    Degradation(DegradationRung),
    /// One injected fault observed (from the `cms-fault` harness).
    Fault {
        /// Fault label, e.g. `poison-duals`.
        fault: String,
    },
}

impl Event {
    /// The JSONL `type` tag.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Chase { .. } => "chase",
            Event::Ground { .. } => "ground",
            Event::Reground { .. } => "reground",
            Event::Solve { .. } => "solve",
            Event::Degradation(_) => "degradation",
            Event::Fault { .. } => "fault",
        }
    }
}

/// One journal entry: an [`Event`] plus ordering metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Process-wide emission sequence number (strictly increasing).
    pub seq: u64,
    /// Nanoseconds since the telemetry epoch.
    pub t_ns: u64,
    /// Innermost open span on the emitting thread, 0 for none.
    pub span: SpanId,
    /// The event.
    pub event: Event,
}

static SEQ: AtomicU64 = AtomicU64::new(0);
static EVENTS: Ring<EventRecord> = Ring::new();

/// Record `event` in the journal (no-op below [`ObsLevel::Journal`]).
///
/// The journal is the flight-recorder ring: when the `CMS_OBS_RING`
/// window is full the oldest event is evicted and counted in
/// [`events_dropped`].
pub fn emit(event: Event) {
    if !enabled(ObsLevel::Journal) {
        return;
    }
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let record = EventRecord {
        seq,
        t_ns: now_ns(),
        span: current_span(),
        event,
    };
    EVENTS.push(seq, record, ring_capacity());
}

/// Take every retained journal record, oldest first, starting a fresh
/// drop-accounting window. Use [`drain_journal_snapshot`] to also get
/// the [`JournalHeader`] with the window's drop counts.
pub fn drain_journal() -> Vec<EventRecord> {
    drain_journal_snapshot().records
}

/// Events evicted from the journal ring over the process lifetime
/// (monotonic; 0 until the ring first overflows).
pub fn events_dropped() -> u64 {
    EVENTS.dropped_total()
}

// ---------------------------------------------------------------------------
// Snapshots, the export header, and the degradation dump
// ---------------------------------------------------------------------------

/// Current version of the snapshot header schema.
pub const JOURNAL_HEADER_VERSION: u64 = 1;

/// Drop-accounting metadata exported as the first line of a journal
/// snapshot, so a reader can tell exactly how much the flight recorder
/// overwrote.
///
/// Invariant (verified by `journal_check`): when `events > 0`, the
/// first retained record satisfies `seq == base_seq + events_dropped`,
/// and the retained sequence numbers are contiguous.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Header schema version ([`JOURNAL_HEADER_VERSION`]).
    pub version: u64,
    /// Retained records in this snapshot.
    pub events: u64,
    /// Sequence number of the first event admitted in this window
    /// (whether or not it is still retained).
    pub base_seq: u64,
    /// Events overwritten (lost) in this window.
    pub events_dropped: u64,
    /// Events overwritten over the process lifetime.
    pub events_dropped_total: u64,
    /// Ring capacity in effect when the snapshot was taken, `0` for
    /// unbounded.
    pub ring_capacity: u64,
}

impl JournalHeader {
    /// The JSONL `type` tag that distinguishes a header from events.
    pub const TYPE: &'static str = "journal-header";

    /// Serialise as a single JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        format!(
            "{{\"type\":\"{}\",\"version\":{},\"events\":{},\"base_seq\":{},\
             \"events_dropped\":{},\"events_dropped_total\":{},\"ring_capacity\":{}}}",
            Self::TYPE,
            self.version,
            self.events,
            self.base_seq,
            self.events_dropped,
            self.events_dropped_total,
            self.ring_capacity
        )
    }

    /// Parse a header line — the inverse of [`JournalHeader::to_json_line`].
    pub fn from_json_line(line: &str) -> Result<JournalHeader, String> {
        let v = json::parse(line)?;
        Self::from_json(&v)
    }

    fn from_json(v: &Json) -> Result<JournalHeader, String> {
        if req_str(v, "type")? != Self::TYPE {
            return Err(format!("not a {:?} line", Self::TYPE));
        }
        Ok(JournalHeader {
            version: req_u64(v, "version")?,
            events: req_u64(v, "events")?,
            base_seq: req_u64(v, "base_seq")?,
            events_dropped: req_u64(v, "events_dropped")?,
            events_dropped_total: req_u64(v, "events_dropped_total")?,
            ring_capacity: req_u64(v, "ring_capacity")?,
        })
    }
}

/// A journal window plus its drop accounting: what the flight recorder
/// retained and exactly how much it lost.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalSnapshot {
    /// Drop accounting for this window.
    pub header: JournalHeader,
    /// Retained records, oldest first.
    pub records: Vec<EventRecord>,
}

impl JournalSnapshot {
    /// Serialise as JSONL: one header line, then one line per record.
    pub fn to_jsonl(&self) -> String {
        let mut out = self.header.to_json_line();
        out.push('\n');
        out.push_str(&export_jsonl(&self.records));
        out
    }

    /// Parse a snapshot export back. The header line may appear
    /// anywhere but is conventionally first; without one, a synthetic
    /// zero-drop header is derived from the records (so pre-ring
    /// exports still parse).
    pub fn parse(text: &str) -> Result<JournalSnapshot, String> {
        let mut header = None;
        let mut records = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
            if v.get("type").and_then(Json::as_str) == Some(JournalHeader::TYPE) {
                let h = JournalHeader::from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?;
                if header.replace(h).is_some() {
                    return Err(format!("line {}: duplicate journal header", i + 1));
                }
            } else {
                records.push(record_from_json(&v).map_err(|e| format!("line {}: {e}", i + 1))?);
            }
        }
        let header = header.unwrap_or(JournalHeader {
            version: JOURNAL_HEADER_VERSION,
            events: records.len() as u64,
            base_seq: records.first().map_or(0, |r| r.seq),
            events_dropped: 0,
            events_dropped_total: 0,
            ring_capacity: 0,
        });
        Ok(JournalSnapshot { header, records })
    }
}

fn snapshot_from(
    mut records: Vec<EventRecord>,
    window: crate::ring::RingWindow,
) -> JournalSnapshot {
    records.sort_by_key(|r| r.seq);
    JournalSnapshot {
        header: JournalHeader {
            version: JOURNAL_HEADER_VERSION,
            events: records.len() as u64,
            // An empty window never admitted an event; anchor the base
            // at the next sequence number to be assigned.
            base_seq: window
                .base_key
                .unwrap_or_else(|| SEQ.load(Ordering::Relaxed)),
            events_dropped: window.dropped,
            events_dropped_total: window.dropped_total,
            ring_capacity: ring_capacity().unwrap_or(0) as u64,
        },
        records,
    }
}

/// Clone the retained journal window without disturbing capture — the
/// live-reader view of the flight recorder.
pub fn snapshot_journal() -> JournalSnapshot {
    let (records, window) = EVENTS.snapshot();
    snapshot_from(records, window)
}

/// Take the retained journal window and its drop accounting, starting a
/// fresh window.
pub fn drain_journal_snapshot() -> JournalSnapshot {
    let (records, window) = EVENTS.drain();
    snapshot_from(records, window)
}

static DUMP_OVERRIDE: Mutex<Option<Option<String>>> = Mutex::new(None);

fn env_dump_path() -> Option<String> {
    static ENV_DUMP: OnceLock<Option<String>> = OnceLock::new();
    ENV_DUMP
        .get_or_init(|| {
            std::env::var("CMS_OBS_DUMP")
                .ok()
                .filter(|p| !p.trim().is_empty())
        })
        .clone()
}

fn dump_path() -> Option<String> {
    DUMP_OVERRIDE
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
        .unwrap_or_else(env_dump_path)
}

/// Programmatically set (or, with `None`, suppress) the degradation
/// dump path, overriding `CMS_OBS_DUMP`. Exists so tests can exercise
/// the dump hook in-process (the environment is only consulted once).
pub fn set_dump_path_override(path: Option<&str>) {
    *DUMP_OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner) = Some(path.map(str::to_owned));
}

/// Drop a [`set_dump_path_override`] and fall back to `CMS_OBS_DUMP`.
pub fn clear_dump_path_override() {
    *DUMP_OVERRIDE.lock().unwrap_or_else(PoisonError::into_inner) = None;
}

/// Crash-style flight-recorder dump: when the degradation ladder fires
/// rung ≥ 2 (fresh-ground fallback or worse) and a dump path is
/// configured (`CMS_OBS_DUMP` or [`set_dump_path_override`]), persist
/// the current journal snapshot — header line plus the last N retained
/// events — to that path, overwriting any previous dump so the file
/// always holds the window before the *latest* serious degradation.
///
/// Best-effort by design: IO errors are swallowed (telemetry must never
/// take the pipeline down). Returns the path written, `None` when the
/// dump was skipped or failed.
pub fn dump_on_degradation(rung: u32) -> Option<String> {
    if rung < 2 || !enabled(ObsLevel::Journal) {
        return None;
    }
    let path = dump_path()?;
    let snapshot = snapshot_journal();
    std::fs::write(&path, snapshot.to_jsonl()).ok()?;
    Some(path)
}

// ---------------------------------------------------------------------------
// JSONL export / import
// ---------------------------------------------------------------------------

fn push_u64(out: &mut String, key: &str, v: u64) {
    let _ = write!(out, ",\"{key}\":{v}");
}

fn push_f64(out: &mut String, key: &str, v: f64) {
    let _ = write!(out, ",\"{key}\":{}", fmt_f64(v));
}

fn push_str(out: &mut String, key: &str, v: &str) {
    let _ = write!(out, ",\"{key}\":{}", escape_str(v));
}

fn push_ground_counters(out: &mut String, c: &GroundCounters) {
    push_u64(out, "substitutions", c.substitutions);
    push_u64(out, "potentials", c.potentials);
    push_u64(out, "constraints", c.constraints);
    push_u64(out, "pruned", c.pruned);
    push_f64(out, "constant_loss", c.constant_loss);
    push_u64(out, "candidates_probed", c.candidates_probed);
    push_u64(out, "candidates_scanned", c.candidates_scanned);
    push_u64(out, "terms_reused", c.terms_reused);
    push_u64(out, "terms_recomputed", c.terms_recomputed);
    push_u64(out, "arith_bindings_spliced", c.arith_bindings_spliced);
    push_u64(out, "fallback_fresh_grounds", c.fallback_fresh_grounds);
    push_u64(out, "solver_restarts", c.solver_restarts);
    push_u64(out, "entries_coalesced", c.entries_coalesced);
    push_u64(out, "sources_deduped", c.sources_deduped);
    push_u64(out, "wall_ns", c.wall_ns);
}

/// Serialise one record as a single JSON line (no trailing newline).
pub fn to_json_line(r: &EventRecord) -> String {
    let mut out = format!(
        "{{\"seq\":{},\"t_ns\":{},\"span\":{},\"type\":\"{}\"",
        r.seq,
        r.t_ns,
        r.span.0,
        r.event.kind()
    );
    match &r.event {
        Event::Chase {
            tgds,
            trie_nodes,
            prefix_bindings_computed,
            prefix_bindings_reused,
            candidates_probed,
            candidates_scanned,
            firings,
            tuples_emitted,
            wall_ns,
        } => {
            push_u64(&mut out, "tgds", *tgds);
            push_u64(&mut out, "trie_nodes", *trie_nodes);
            push_u64(
                &mut out,
                "prefix_bindings_computed",
                *prefix_bindings_computed,
            );
            push_u64(&mut out, "prefix_bindings_reused", *prefix_bindings_reused);
            push_u64(&mut out, "candidates_probed", *candidates_probed);
            push_u64(&mut out, "candidates_scanned", *candidates_scanned);
            push_u64(&mut out, "firings", *firings);
            push_u64(&mut out, "tuples_emitted", *tuples_emitted);
            push_u64(&mut out, "wall_ns", *wall_ns);
        }
        Event::Ground { rule, counters } => {
            push_str(&mut out, "rule", rule);
            push_ground_counters(&mut out, counters);
        }
        Event::Reground { rules, counters } => {
            push_u64(&mut out, "rules", *rules);
            push_ground_counters(&mut out, counters);
        }
        Event::Solve {
            iterations,
            converged,
            restarts,
            health,
            objective,
            max_violation,
            local_ns,
            consensus_ns,
        } => {
            push_u64(&mut out, "iterations", *iterations);
            let _ = write!(out, ",\"converged\":{converged}");
            push_u64(&mut out, "restarts", *restarts);
            push_str(&mut out, "health", health);
            push_f64(&mut out, "objective", *objective);
            push_f64(&mut out, "max_violation", *max_violation);
            push_u64(&mut out, "local_ns", *local_ns);
            push_u64(&mut out, "consensus_ns", *consensus_ns);
        }
        Event::Degradation(rung) => {
            push_u64(&mut out, "rung", u64::from(rung.rung()));
            match rung {
                DegradationRung::DroppedNonFiniteDuals { dropped } => {
                    push_u64(&mut out, "dropped", *dropped);
                }
                DegradationRung::FreshGround { reason } => {
                    push_str(&mut out, "reason", reason);
                }
                DegradationRung::ColdSolve { health }
                | DegradationRung::FreshGroundColdSolve { health } => {
                    push_str(&mut out, "health", health);
                }
            }
        }
        Event::Fault { fault } => {
            push_str(&mut out, "fault", fault);
        }
    }
    out.push('}');
    out
}

/// Serialise records as JSONL (one record per line, trailing newline).
pub fn export_jsonl(records: &[EventRecord]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&to_json_line(r));
        out.push('\n');
    }
    out
}

fn req_u64(v: &Json, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing/invalid u64 field {key:?}"))
}

fn req_f64(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing/invalid number field {key:?}"))
}

fn req_str(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_owned)
        .ok_or_else(|| format!("missing/invalid string field {key:?}"))
}

fn parse_ground_counters(v: &Json) -> Result<GroundCounters, String> {
    Ok(GroundCounters {
        substitutions: req_u64(v, "substitutions")?,
        potentials: req_u64(v, "potentials")?,
        constraints: req_u64(v, "constraints")?,
        pruned: req_u64(v, "pruned")?,
        constant_loss: req_f64(v, "constant_loss")?,
        candidates_probed: req_u64(v, "candidates_probed")?,
        candidates_scanned: req_u64(v, "candidates_scanned")?,
        terms_reused: req_u64(v, "terms_reused")?,
        terms_recomputed: req_u64(v, "terms_recomputed")?,
        arith_bindings_spliced: req_u64(v, "arith_bindings_spliced")?,
        fallback_fresh_grounds: req_u64(v, "fallback_fresh_grounds")?,
        solver_restarts: req_u64(v, "solver_restarts")?,
        entries_coalesced: req_u64(v, "entries_coalesced")?,
        sources_deduped: req_u64(v, "sources_deduped")?,
        wall_ns: req_u64(v, "wall_ns")?,
    })
}

/// Parse one JSON line back into an [`EventRecord`] — the inverse of
/// [`to_json_line`], also used by the CI schema validator.
pub fn from_json_line(line: &str) -> Result<EventRecord, String> {
    record_from_json(&json::parse(line)?)
}

/// Parse an already-parsed JSON object into an [`EventRecord`] — shared
/// by [`from_json_line`] and the trace-export parser, which finds the
/// same objects nested inside Chrome trace `args`.
pub(crate) fn record_from_json(v: &Json) -> Result<EventRecord, String> {
    let event = match req_str(v, "type")?.as_str() {
        "chase" => Event::Chase {
            tgds: req_u64(v, "tgds")?,
            trie_nodes: req_u64(v, "trie_nodes")?,
            prefix_bindings_computed: req_u64(v, "prefix_bindings_computed")?,
            prefix_bindings_reused: req_u64(v, "prefix_bindings_reused")?,
            candidates_probed: req_u64(v, "candidates_probed")?,
            candidates_scanned: req_u64(v, "candidates_scanned")?,
            firings: req_u64(v, "firings")?,
            tuples_emitted: req_u64(v, "tuples_emitted")?,
            wall_ns: req_u64(v, "wall_ns")?,
        },
        "ground" => Event::Ground {
            rule: req_str(v, "rule")?,
            counters: parse_ground_counters(v)?,
        },
        "reground" => Event::Reground {
            rules: req_u64(v, "rules")?,
            counters: parse_ground_counters(v)?,
        },
        "solve" => Event::Solve {
            iterations: req_u64(v, "iterations")?,
            converged: v
                .get("converged")
                .and_then(Json::as_bool)
                .ok_or("missing/invalid bool field \"converged\"")?,
            restarts: req_u64(v, "restarts")?,
            health: req_str(v, "health")?,
            objective: req_f64(v, "objective")?,
            max_violation: req_f64(v, "max_violation")?,
            local_ns: req_u64(v, "local_ns")?,
            consensus_ns: req_u64(v, "consensus_ns")?,
        },
        "degradation" => {
            let rung = match req_u64(v, "rung")? {
                1 => DegradationRung::DroppedNonFiniteDuals {
                    dropped: req_u64(v, "dropped")?,
                },
                2 => DegradationRung::FreshGround {
                    reason: req_str(v, "reason")?,
                },
                3 => DegradationRung::ColdSolve {
                    health: req_str(v, "health")?,
                },
                4 => DegradationRung::FreshGroundColdSolve {
                    health: req_str(v, "health")?,
                },
                n => return Err(format!("unknown degradation rung {n}")),
            };
            Event::Degradation(rung)
        }
        "fault" => Event::Fault {
            fault: req_str(v, "fault")?,
        },
        other => return Err(format!("unknown event type {other:?}")),
    };
    Ok(EventRecord {
        seq: req_u64(v, "seq")?,
        t_ns: req_u64(v, "t_ns")?,
        span: SpanId(req_u64(v, "span")?),
        event,
    })
}

/// Parse a JSONL export back into records (blank lines and
/// [`JournalHeader`] lines skipped — use [`JournalSnapshot::parse`] to
/// also recover the header).
pub fn parse_jsonl(text: &str) -> Result<Vec<EventRecord>, String> {
    Ok(JournalSnapshot::parse(text)?.records)
}

// ---------------------------------------------------------------------------
// Human-readable rendering
// ---------------------------------------------------------------------------

fn event_line(r: &EventRecord) -> String {
    let t_ms = r.t_ns as f64 / 1e6;
    let body = match &r.event {
        Event::Chase {
            tgds,
            firings,
            tuples_emitted,
            wall_ns,
            ..
        } => format!(
            "chase: {tgds} tgds, {firings} firings, {tuples_emitted} tuples in {:.3}ms",
            *wall_ns as f64 / 1e6
        ),
        Event::Ground { rule, counters } => format!(
            "ground {rule}: {} potentials, {} constraints, {} substitutions in {:.3}ms",
            counters.potentials,
            counters.constraints,
            counters.substitutions,
            counters.wall_ns as f64 / 1e6
        ),
        Event::Reground { rules, counters } => format!(
            "reground ({rules} rules): {} reused, {} recomputed, {} arith spliced in {:.3}ms",
            counters.terms_reused,
            counters.terms_recomputed,
            counters.arith_bindings_spliced,
            counters.wall_ns as f64 / 1e6
        ),
        Event::Solve {
            iterations,
            health,
            restarts,
            objective,
            ..
        } => format!(
            "solve: {iterations} iters, health={health}, restarts={restarts}, obj={objective:.3}"
        ),
        Event::Degradation(rung) => {
            format!("degradation rung {}: {}", rung.rung(), rung.render())
        }
        Event::Fault { fault } => format!("fault injected: {fault}"),
    };
    format!("[{t_ms:9.3}ms] #{} {}", r.seq, body)
}

/// Render the journal as a human-readable tree: events nest under the
/// span tree (when `spans` covers their span ID) and otherwise print
/// flat in sequence order.
pub fn render_tree(spans: &[SpanRecord], events: &[EventRecord]) -> String {
    use std::collections::BTreeMap;
    let mut by_span: BTreeMap<SpanId, Vec<&EventRecord>> = BTreeMap::new();
    let known: std::collections::BTreeSet<SpanId> = spans.iter().map(|s| s.id).collect();
    let mut flat: Vec<&EventRecord> = Vec::new();
    for e in events {
        if e.span != SpanId::NONE && known.contains(&e.span) {
            by_span.entry(e.span).or_default().push(e);
        } else {
            flat.push(e);
        }
    }
    let mut children: BTreeMap<SpanId, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        children.entry(s.parent).or_default().push(s);
    }
    for v in children.values_mut() {
        v.sort_by_key(|s| s.start_ns);
    }
    fn emit(
        out: &mut String,
        children: &BTreeMap<SpanId, Vec<&SpanRecord>>,
        by_span: &BTreeMap<SpanId, Vec<&EventRecord>>,
        node: SpanId,
        depth: usize,
    ) {
        if let Some(kids) = children.get(&node) {
            for s in kids {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                let _ = writeln!(out, "{} {:.3}ms", s.name, s.wall_ns as f64 / 1e6);
                if let Some(events) = by_span.get(&s.id) {
                    for e in events {
                        for _ in 0..=depth {
                            out.push_str("  ");
                        }
                        out.push_str(&event_line(e));
                        out.push('\n');
                    }
                }
                emit(out, children, by_span, s.id, depth + 1);
            }
        }
    }
    let mut out = String::new();
    emit(&mut out, &children, &by_span, SpanId::NONE, 0);
    for e in flat {
        out.push_str(&event_line(e));
        out.push('\n');
    }
    out
}

//! `cms-obs`: the unified telemetry core for the schema-mapping
//! selection pipeline — zero dependencies, no `unsafe`.
//!
//! Three cooperating facilities, all gated by one [`ObsLevel`] resolved
//! from the `CMS_OBS` environment variable (`off`/`stats`/`spans`/
//! `journal`) or a programmatic [`set_level_override`]:
//!
//! * a **metrics registry** ([`registry`]) of named counters, gauges
//!   and fixed-bucket histograms with atomic recording and a
//!   snapshot/diff API — active from [`ObsLevel::Stats`];
//! * hierarchical **spans** ([`span()`], [`span_with_parent`]) measuring
//!   monotonic wall time and best-effort thread CPU time, with
//!   explicit parent IDs for worker threads — active from
//!   [`ObsLevel::Spans`];
//! * a **structured event journal** ([`emit`]) of typed chase /
//!   ground / reground / solve / degradation / fault records,
//!   exportable as JSONL ([`export_jsonl`]) and as a human-readable
//!   tree ([`render_tree`]) — active at [`ObsLevel::Journal`].
//!
//! At `off` every recording call is one relaxed atomic load and an
//! untaken branch; the regrounding bench gates the `stats` level at
//! ≤2% overhead on the warm-flip path. See `docs/observability.md`
//! for the span hierarchy, metric names and JSONL schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod level;
pub mod metrics;
pub mod profile;
pub mod ring;
pub mod rss;
pub mod span;
pub mod trace;

pub use journal::{
    clear_dump_path_override, drain_journal, drain_journal_snapshot, dump_on_degradation, emit,
    events_dropped, export_jsonl, from_json_line, parse_jsonl, render_tree, set_dump_path_override,
    snapshot_journal, to_json_line, DegradationRung, Event, EventRecord, GroundCounters,
    JournalHeader, JournalSnapshot,
};
pub use level::{clear_level_override, enabled, level, set_level_override, ObsLevel};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LazyCounter, LazyHistogram, MetricsSnapshot,
    Registry,
};
pub use profile::{profile, profile_report, ChildRow, Profile, ProfileEntry};
pub use ring::{
    clear_ring_capacity_override, ring_capacity, set_ring_capacity_override, Ring, RingWindow,
    DEFAULT_RING_CAPACITY,
};
pub use rss::peak_rss_bytes;
pub use span::{
    clear_cpu_sampling_override, current_span, current_tid, drain_spans, record_span_duration,
    render_tree as render_span_tree, set_cpu_sampling_override, set_thread_track, snapshot_spans,
    span, span_with_parent, spans_dropped, thread_track_names, SpanGuard, SpanId, SpanRecord,
};
pub use trace::{export_trace_json, parse_trace_json};

use std::sync::OnceLock;

/// The process-wide metrics registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Convenience: bump the named counter by `n` when the level is at
/// least [`ObsLevel::Stats`].
///
/// Takes the registry lock — fine once per ground/solve/chase, not
/// inside per-iteration loops (pre-fetch a handle there, or use a
/// `static` [`LazyCounter`], which caches the handle after its first
/// recording).
pub fn count(name: &str, n: u64) {
    if enabled(ObsLevel::Stats) {
        registry().counter(name).add(n);
    }
}

//! `cms-obs`: the unified telemetry core for the schema-mapping
//! selection pipeline — zero dependencies, no `unsafe`.
//!
//! Three cooperating facilities, all gated by one [`ObsLevel`] resolved
//! from the `CMS_OBS` environment variable (`off`/`stats`/`spans`/
//! `journal`) or a programmatic [`set_level_override`]:
//!
//! * a **metrics registry** ([`registry`]) of named counters, gauges
//!   and fixed-bucket histograms with atomic recording and a
//!   snapshot/diff API — active from [`ObsLevel::Stats`];
//! * hierarchical **spans** ([`span()`], [`span_with_parent`]) measuring
//!   monotonic wall time and best-effort thread CPU time, with
//!   explicit parent IDs for worker threads — active from
//!   [`ObsLevel::Spans`];
//! * a **structured event journal** ([`emit`]) of typed chase /
//!   ground / reground / solve / degradation / fault records,
//!   exportable as JSONL ([`export_jsonl`]) and as a human-readable
//!   tree ([`render_tree`]) — active at [`ObsLevel::Journal`].
//!
//! At `off` every recording call is one relaxed atomic load and an
//! untaken branch; the regrounding bench gates the `stats` level at
//! ≤2% overhead on the warm-flip path. See `docs/observability.md`
//! for the span hierarchy, metric names and JSONL schema.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod journal;
pub mod json;
pub mod level;
pub mod metrics;
pub mod rss;
pub mod span;

pub use journal::{
    drain_journal, emit, export_jsonl, from_json_line, parse_jsonl, render_tree, to_json_line,
    DegradationRung, Event, EventRecord, GroundCounters,
};
pub use level::{clear_level_override, enabled, level, set_level_override, ObsLevel};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, LazyCounter, LazyHistogram, MetricsSnapshot,
    Registry,
};
pub use rss::peak_rss_bytes;
pub use span::{
    current_span, drain_spans, record_span_duration, render_tree as render_span_tree, span,
    span_with_parent, SpanGuard, SpanId, SpanRecord,
};

use std::sync::OnceLock;

/// The process-wide metrics registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Convenience: bump the named counter by `n` when the level is at
/// least [`ObsLevel::Stats`].
///
/// Takes the registry lock — fine once per ground/solve/chase, not
/// inside per-iteration loops (pre-fetch a handle there, or use a
/// `static` [`LazyCounter`], which caches the handle after its first
/// recording).
pub fn count(name: &str, n: u64) {
    if enabled(ObsLevel::Stats) {
        registry().counter(name).add(n);
    }
}

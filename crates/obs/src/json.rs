//! Minimal self-contained JSON support for the journal exporter and
//! validator — a writer for the fixed shapes we emit and a small
//! recursive-descent parser so exports can be round-tripped and
//! schema-checked without external crates.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is normalised.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field access; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Escape and quote `s` as a JSON string.
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 so it parses back to the same bits (shortest
/// round-trip form); non-finite values become `null` per JSON.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_owned()
    }
}

/// Parse one JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        // Surrogate pairs are not emitted by our writer;
                        // map lone surrogates to the replacement char.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err("bad escape".into()),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected , or ] at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected : at byte {pos}", pos = *pos));
        }
        *pos += 1;
        map.insert(key, parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected , or }} at byte {pos}", pos = *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "s": "x\n\"y\""}"#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.get("a").unwrap(),
            &Json::Arr(vec![Json::Num(1.0), Json::Num(2.5), Json::Num(-300.0)])
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\n\"y\""));
    }

    #[test]
    fn escape_round_trips() {
        let s = "tab\t nl\n quote\" back\\ unit\u{1}";
        let parsed = parse(&escape_str(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn f64_shortest_form_round_trips() {
        for v in [0.0, -1.5, 1e-12, 123456.789, f64::MAX] {
            let parsed = parse(&fmt_f64(v)).unwrap();
            assert_eq!(parsed.as_f64(), Some(v));
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{,}").is_err());
        assert!(parse("[1,]").is_err());
    }
}

//! Span self-time attribution: aggregate the recorded span tree into a
//! per-label performance profile.
//!
//! Raw spans answer "what happened on this run"; a profile answers
//! "where did the time go". For every span label (`ground`, `solve`,
//! `ground/rule/error-link`, ...) the profile reports:
//!
//! * **inclusive** wall/CPU time — the span and everything under it.
//!   Recursive nesting (a label appearing inside itself) counts only the
//!   outermost occurrence, so inclusive time never double-counts;
//! * **self** wall/CPU time — inclusive minus the time spent in direct
//!   children *recorded on the same thread*. Children on worker threads
//!   (explicitly parented via [`crate::span_with_parent`]) overlap their
//!   parent on the wall clock, so subtracting them would push self time
//!   negative; they are attributed to their own labels instead;
//! * call counts and a per-child breakdown (direct children aggregated
//!   by label), so a hot parent can be split into its phases.
//!
//! [`profile_report`] snapshots the live span ring without disturbing
//! capture; [`profile`] aggregates any span slice (e.g. one drained from
//! a finished run). Profiles serialise to a single JSON document
//! ([`Profile::to_json`] / [`Profile::parse`]) that `obs_diff` consumes
//! to attribute a bench regression to the phase that slowed down.

use crate::json::{self, escape_str, Json};
use crate::span::{snapshot_spans, spans_dropped, SpanId, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One direct-child row of a [`ProfileEntry`]: where a label's
/// non-self time went, aggregated by child label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChildRow {
    /// Child span label.
    pub label: String,
    /// Times a span of this label appeared as a direct child.
    pub count: u64,
    /// Total wall time of those child spans, nanoseconds.
    pub wall_ns: u64,
}

/// Aggregated timing for one span label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileEntry {
    /// The span label (span name as recorded).
    pub label: String,
    /// Spans recorded with this label.
    pub count: u64,
    /// Wall time including children, nanoseconds. Recursive occurrences
    /// (label nested inside itself) count only at the outermost level.
    pub wall_inclusive_ns: u64,
    /// Wall time minus same-thread direct-children wall time,
    /// nanoseconds — the time this label spent in its own code.
    pub wall_self_ns: u64,
    /// CPU time including children, when sampled (`CMS_OBS_CPU`).
    pub cpu_inclusive_ns: Option<u64>,
    /// CPU time minus same-thread direct-children CPU time, when both
    /// sides were sampled.
    pub cpu_self_ns: Option<u64>,
    /// Direct children aggregated by label, largest wall first.
    pub children: Vec<ChildRow>,
}

/// A per-label performance profile aggregated from recorded spans.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Profile {
    /// Entries sorted by self wall time, largest first.
    pub entries: Vec<ProfileEntry>,
    /// Total wall time across root spans, nanoseconds (roots are spans
    /// whose parent was never recorded — the run's top-level phases).
    pub total_wall_ns: u64,
    /// Spans aggregated into this profile.
    pub spans: u64,
    /// Spans the flight-recorder ring had already evicted when the
    /// profile was taken — non-zero means the profile undercounts.
    pub spans_dropped: u64,
}

/// Current version of the profile JSON schema.
pub const PROFILE_VERSION: u64 = 1;

/// Aggregate a span slice into a [`Profile`]. `dropped` is the span
/// ring's eviction count for the same window (pass 0 for complete
/// captures).
pub fn profile(spans: &[SpanRecord], dropped: u64) -> Profile {
    let by_id: BTreeMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut children: BTreeMap<SpanId, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        children.entry(s.parent).or_default().push(s);
    }

    struct Acc {
        count: u64,
        wall_incl: u64,
        wall_self: u64,
        cpu_incl: Option<u64>,
        cpu_self: Option<u64>,
        children: BTreeMap<String, (u64, u64)>,
    }
    let mut accs: BTreeMap<&str, Acc> = BTreeMap::new();
    let mut total_wall = 0u64;

    for s in spans {
        // A root for totals: its parent was never recorded (top-level
        // span or drained separately from its parent).
        if !by_id.contains_key(&s.parent) {
            total_wall += s.wall_ns;
        }
        // Outermost-of-label check: walk ancestors; recursion inside the
        // same label contributes to counts/self but not inclusive.
        let mut outermost = true;
        let mut cursor = s.parent;
        let mut hops = 0usize;
        while let Some(p) = by_id.get(&cursor) {
            if p.name == s.name {
                outermost = false;
                break;
            }
            cursor = p.parent;
            hops += 1;
            if hops > spans.len() {
                break; // cycle in corrupted input; treat as outermost
            }
        }

        let kids = children.get(&s.id);
        let mut same_thread_child_wall = 0u64;
        let mut same_thread_child_cpu = 0u64;
        if let Some(kids) = kids {
            for k in kids {
                if k.tid == s.tid {
                    same_thread_child_wall += k.wall_ns;
                    same_thread_child_cpu += k.cpu_ns.unwrap_or(0);
                }
            }
        }

        let acc = accs.entry(s.name.as_str()).or_insert_with(|| Acc {
            count: 0,
            wall_incl: 0,
            wall_self: 0,
            cpu_incl: None,
            cpu_self: None,
            children: BTreeMap::new(),
        });
        acc.count += 1;
        if outermost {
            acc.wall_incl += s.wall_ns;
            if let Some(cpu) = s.cpu_ns {
                *acc.cpu_incl.get_or_insert(0) += cpu;
            }
        }
        acc.wall_self += s.wall_ns.saturating_sub(same_thread_child_wall);
        if let Some(cpu) = s.cpu_ns {
            *acc.cpu_self.get_or_insert(0) += cpu.saturating_sub(same_thread_child_cpu);
        }
        if let Some(kids) = kids {
            for k in kids {
                let slot = acc.children.entry(k.name.clone()).or_insert((0, 0));
                slot.0 += 1;
                slot.1 += k.wall_ns;
            }
        }
    }

    let mut entries: Vec<ProfileEntry> = accs
        .into_iter()
        .map(|(label, acc)| {
            let mut children: Vec<ChildRow> = acc
                .children
                .into_iter()
                .map(|(label, (count, wall_ns))| ChildRow {
                    label,
                    count,
                    wall_ns,
                })
                .collect();
            children.sort_by(|a, b| b.wall_ns.cmp(&a.wall_ns).then(a.label.cmp(&b.label)));
            ProfileEntry {
                label: label.to_owned(),
                count: acc.count,
                wall_inclusive_ns: acc.wall_incl,
                wall_self_ns: acc.wall_self,
                cpu_inclusive_ns: acc.cpu_incl,
                cpu_self_ns: acc.cpu_self,
                children,
            }
        })
        .collect();
    entries.sort_by(|a, b| {
        b.wall_self_ns
            .cmp(&a.wall_self_ns)
            .then(a.label.cmp(&b.label))
    });
    Profile {
        entries,
        total_wall_ns: total_wall,
        spans: spans.len() as u64,
        spans_dropped: dropped,
    }
}

/// Profile the live span ring without disturbing capture: snapshot the
/// retained window and aggregate it, carrying the ring's lifetime drop
/// count so an overwritten window is visibly partial.
pub fn profile_report() -> Profile {
    profile(&snapshot_spans(), spans_dropped())
}

impl Profile {
    /// Look up one entry by label.
    pub fn entry(&self, label: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.label == label)
    }

    /// Render the profile as an aligned table: one row per label sorted
    /// by self wall time, each followed by its child breakdown. `top`
    /// limits the entry rows (0 = all).
    pub fn render(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>12} {:>12} {:>11} {:>11}",
            "label", "calls", "self ms", "incl ms", "self cpu", "incl cpu"
        );
        let shown = if top == 0 { self.entries.len() } else { top };
        for e in self.entries.iter().take(shown) {
            let cpu = |v: Option<u64>| match v {
                Some(ns) => format!("{:.1}", ns as f64 / 1e6),
                None => "-".to_owned(),
            };
            let _ = writeln!(
                out,
                "{:<36} {:>8} {:>12.3} {:>12.3} {:>11} {:>11}",
                e.label,
                e.count,
                e.wall_self_ns as f64 / 1e6,
                e.wall_inclusive_ns as f64 / 1e6,
                cpu(e.cpu_self_ns),
                cpu(e.cpu_inclusive_ns),
            );
            for c in &e.children {
                let _ = writeln!(
                    out,
                    "  └ {:<32} {:>8} {:>12.3}",
                    c.label,
                    c.count,
                    c.wall_ns as f64 / 1e6
                );
            }
        }
        if self.entries.len() > shown {
            let _ = writeln!(out, "... {} more labels", self.entries.len() - shown);
        }
        let _ = writeln!(
            out,
            "total {:.3}ms across {} spans{}",
            self.total_wall_ns as f64 / 1e6,
            self.spans,
            if self.spans_dropped > 0 {
                format!(
                    " ({} spans dropped by the ring — profile is partial)",
                    self.spans_dropped
                )
            } else {
                String::new()
            }
        );
        out
    }

    /// Serialise as one JSON document — the format `obs_diff` consumes.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"type\":\"profile\",\"version\":{PROFILE_VERSION},\"total_wall_ns\":{},\
             \"spans\":{},\"spans_dropped\":{},\"entries\":[",
            self.total_wall_ns, self.spans, self.spans_dropped
        );
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"label\":{},\"count\":{},\"wall_inclusive_ns\":{},\"wall_self_ns\":{}",
                escape_str(&e.label),
                e.count,
                e.wall_inclusive_ns,
                e.wall_self_ns
            );
            if let Some(cpu) = e.cpu_inclusive_ns {
                let _ = write!(out, ",\"cpu_inclusive_ns\":{cpu}");
            }
            if let Some(cpu) = e.cpu_self_ns {
                let _ = write!(out, ",\"cpu_self_ns\":{cpu}");
            }
            out.push_str(",\"children\":[");
            for (j, c) in e.children.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "{{\"label\":{},\"count\":{},\"wall_ns\":{}}}",
                    escape_str(&c.label),
                    c.count,
                    c.wall_ns
                );
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// Parse a profile JSON document — the inverse of [`Profile::to_json`].
    pub fn parse(text: &str) -> Result<Profile, String> {
        let v = json::parse(text)?;
        if v.get("type").and_then(Json::as_str) != Some("profile") {
            return Err("not a profile document (missing type:\"profile\")".into());
        }
        let req = |v: &Json, key: &str| {
            v.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("missing/invalid u64 field {key:?}"))
        };
        let entries_json = match v.get("entries") {
            Some(Json::Arr(items)) => items,
            _ => return Err("missing/invalid entries array".into()),
        };
        let mut entries = Vec::with_capacity(entries_json.len());
        for e in entries_json {
            let label = e
                .get("label")
                .and_then(Json::as_str)
                .ok_or("entry missing label")?
                .to_owned();
            let mut children = Vec::new();
            if let Some(Json::Arr(kids)) = e.get("children") {
                for c in kids {
                    children.push(ChildRow {
                        label: c
                            .get("label")
                            .and_then(Json::as_str)
                            .ok_or("child missing label")?
                            .to_owned(),
                        count: req(c, "count")?,
                        wall_ns: req(c, "wall_ns")?,
                    });
                }
            }
            entries.push(ProfileEntry {
                label,
                count: req(e, "count")?,
                wall_inclusive_ns: req(e, "wall_inclusive_ns")?,
                wall_self_ns: req(e, "wall_self_ns")?,
                cpu_inclusive_ns: e.get("cpu_inclusive_ns").and_then(Json::as_u64),
                cpu_self_ns: e.get("cpu_self_ns").and_then(Json::as_u64),
                children,
            });
        }
        Ok(Profile {
            entries,
            total_wall_ns: req(&v, "total_wall_ns")?,
            spans: req(&v, "spans")?,
            spans_dropped: req(&v, "spans_dropped")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &str, start: u64, wall: u64, tid: u64) -> SpanRecord {
        SpanRecord {
            id: SpanId(id),
            parent: SpanId(parent),
            name: name.to_owned(),
            start_ns: start,
            wall_ns: wall,
            cpu_ns: Some(wall / 2),
            tid,
        }
    }

    #[test]
    fn self_time_subtracts_same_thread_children_only() {
        let spans = vec![
            span(1, 0, "solve", 0, 1000, 1),
            span(2, 1, "solve/local", 0, 300, 1),
            span(3, 1, "solve/consensus", 300, 200, 1),
            // Worker overlaps the parent on another thread: attributed to
            // its own label, NOT subtracted from the parent's self time.
            span(4, 1, "solve/worker-0", 0, 900, 2),
        ];
        let p = profile(&spans, 0);
        let solve = p.entry("solve").unwrap();
        assert_eq!(solve.wall_inclusive_ns, 1000);
        assert_eq!(solve.wall_self_ns, 500); // 1000 - 300 - 200
        assert_eq!(solve.cpu_self_ns, Some(250)); // 500 - 150 - 100
        assert_eq!(solve.children.len(), 3);
        assert_eq!(solve.children[0].label, "solve/worker-0");
        let worker = p.entry("solve/worker-0").unwrap();
        assert_eq!(worker.wall_self_ns, 900);
        assert_eq!(p.total_wall_ns, 1000); // one root
    }

    #[test]
    fn recursive_labels_count_inclusive_once() {
        let spans = vec![
            span(1, 0, "chase", 0, 1000, 1),
            span(2, 1, "chase", 100, 600, 1), // recursion: same label
            span(3, 2, "chase", 200, 100, 1),
        ];
        let p = profile(&spans, 0);
        let chase = p.entry("chase").unwrap();
        assert_eq!(chase.count, 3);
        assert_eq!(chase.wall_inclusive_ns, 1000, "outermost only");
        // Self: 1000-600 + 600-100 + 100 = 1000.
        assert_eq!(chase.wall_self_ns, 1000);
    }

    #[test]
    fn json_round_trips() {
        let spans = vec![
            span(1, 0, "ground", 0, 500, 1),
            span(2, 1, "ground/rule/r — σ\"", 0, 200, 1),
            SpanRecord {
                cpu_ns: None,
                ..span(3, 0, "solve", 500, 300, 1)
            },
        ];
        let p = profile(&spans, 7);
        let back = Profile::parse(&p.to_json()).expect("profile json parses");
        assert_eq!(back, p);
        assert_eq!(back.spans_dropped, 7);
    }

    #[test]
    fn render_is_sorted_by_self_time_and_notes_drops() {
        let spans = vec![span(1, 0, "a", 0, 100, 1), span(2, 0, "b", 0, 900, 1)];
        let p = profile(&spans, 3);
        let table = p.render(0);
        let a = table.find("\na ").unwrap();
        let b = table.find("\nb ").unwrap();
        assert!(b < a, "larger self time renders first:\n{table}");
        assert!(table.contains("3 spans dropped"));
    }
}

//! Hierarchical spans: RAII guards measuring monotonic wall time and
//! best-effort thread CPU time, with explicit parent IDs for
//! cross-thread attribution.
//!
//! A span opened with [`span`] parents itself under the current
//! thread's innermost open span. Worker threads (the sharded-ADMM
//! consensus, the parallel grounder) have no ambient parent, so they
//! open their spans with [`span_with_parent`], passing the ID the
//! coordinating thread captured before spawning — that keeps the tree
//! connected across `std::thread::scope` boundaries.
//!
//! Every record also carries the recording thread's track ID
//! ([`current_tid`]) so the trace export can lay worker threads out on
//! separate tracks and the profiler can subtract same-thread child time
//! when computing self time. Threads can label their track with
//! [`set_thread_track`] (e.g. `admm-worker-0`).
//!
//! Below [`ObsLevel::Spans`] every guard is inert: no ID is allocated,
//! nothing is recorded on drop. The sink is the bounded flight-recorder
//! ring (`CMS_OBS_RING`): when full, the oldest span is evicted and
//! counted in [`spans_dropped`]. CPU sampling reads
//! `/proc/thread-self/stat` — a syscall per span open/close — and can
//! be turned off (`CMS_OBS_CPU=off`) for always-on capture where the
//! ≤2% overhead budget matters more than CPU attribution.

use crate::level::{enabled, ObsLevel};
use crate::ring::{ring_capacity, Ring};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Identifier of a recorded span. `SpanId(0)` is "no span" (the root).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The absent span: parents under it render at top level.
    pub const NONE: SpanId = SpanId(0);
}

/// One finished span, recorded when its guard drops.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// This span's ID.
    pub id: SpanId,
    /// Parent span ID, [`SpanId::NONE`] for top-level spans.
    pub parent: SpanId,
    /// Span name, e.g. `solve/local`.
    pub name: String,
    /// Start offset from the process telemetry epoch, nanoseconds.
    pub start_ns: u64,
    /// Monotonic wall duration, nanoseconds.
    pub wall_ns: u64,
    /// Thread CPU time consumed inside the span, when the platform
    /// exposes it (`/proc/thread-self/stat` on Linux) and sampling is
    /// enabled (`CMS_OBS_CPU`).
    pub cpu_ns: Option<u64>,
    /// Track ID of the recording thread (small, process-unique,
    /// assigned on first telemetry use per thread). Trace export lays
    /// each track out as one Perfetto thread.
    pub tid: u64,
}

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static RECORDS: Ring<SpanRecord> = Ring::new();

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the process telemetry epoch (first telemetry use).
pub(crate) fn now_ns() -> u64 {
    Instant::now().duration_since(epoch()).as_nanos() as u64
}

thread_local! {
    static CURRENT: Cell<SpanId> = const { Cell::new(SpanId::NONE) };
    static TID: Cell<u64> = const { Cell::new(0) };
}

/// The current thread's innermost open span, for parenting work handed
/// to other threads or attributing journal events.
pub fn current_span() -> SpanId {
    CURRENT.with(Cell::get)
}

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// This thread's track ID: small, process-unique, assigned on first use
/// and stable for the thread's lifetime.
pub fn current_tid() -> u64 {
    TID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// Track names never exceed this many entries — threads come and go,
/// the label map must stay bounded like everything else here.
const TRACK_NAME_CAP: usize = 4096;

static TRACK_NAMES: Mutex<Option<std::collections::BTreeMap<u64, String>>> = Mutex::new(None);

/// Label the calling thread's trace track (e.g. `admm-worker-0`). The
/// trace export emits it as the Perfetto thread name. No-op below
/// [`ObsLevel::Spans`] and once [`TRACK_NAME_CAP`] distinct threads
/// have registered.
pub fn set_thread_track(name: impl Into<String>) {
    if !enabled(ObsLevel::Spans) {
        return;
    }
    let tid = current_tid();
    let mut names = TRACK_NAMES.lock().unwrap_or_else(PoisonError::into_inner);
    let names = names.get_or_insert_with(Default::default);
    if names.len() < TRACK_NAME_CAP || names.contains_key(&tid) {
        names.insert(tid, name.into());
    }
}

/// The registered track labels, keyed by track ID.
pub fn thread_track_names() -> std::collections::BTreeMap<u64, String> {
    TRACK_NAMES
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// CPU sampling toggle (CMS_OBS_CPU)
// ---------------------------------------------------------------------------

const CPU_UNSET: u8 = u8::MAX;
static CPU_SAMPLING: AtomicU8 = AtomicU8::new(CPU_UNSET);

fn env_cpu_sampling() -> bool {
    static ENV_CPU: OnceLock<bool> = OnceLock::new();
    *ENV_CPU.get_or_init(|| match std::env::var("CMS_OBS_CPU") {
        Ok(raw) => match raw.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "no" => false,
            "on" | "1" | "true" | "yes" | "" => true,
            _ => {
                eprintln!("warning: CMS_OBS_CPU={raw:?} is not on/off; CPU sampling on");
                true
            }
        },
        Err(_) => true,
    })
}

fn cpu_sampling() -> bool {
    match CPU_SAMPLING.load(Ordering::Relaxed) {
        CPU_UNSET => env_cpu_sampling(),
        v => v != 0,
    }
}

/// Programmatically force per-span CPU sampling on or off, overriding
/// `CMS_OBS_CPU`. The always-on flight-recorder bench turns it off: the
/// `/proc` read per span open/close is the one span cost that does not
/// fit a ≤2% overhead budget.
pub fn set_cpu_sampling_override(on: bool) {
    CPU_SAMPLING.store(u8::from(on), Ordering::Relaxed);
}

/// Drop a [`set_cpu_sampling_override`] and fall back to `CMS_OBS_CPU`.
pub fn clear_cpu_sampling_override() {
    CPU_SAMPLING.store(CPU_UNSET, Ordering::Relaxed);
}

/// Best-effort CPU time of the calling thread, nanoseconds.
///
/// Linux: utime+stime of `/proc/thread-self/stat`, assuming the
/// userspace-visible 100 Hz tick. Elsewhere: `None`.
fn thread_cpu_ns() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let stat = std::fs::read_to_string("/proc/thread-self/stat").ok()?;
        // Fields after the comm, which may itself contain spaces and
        // parens; utime and stime are fields 14 and 15 (1-based).
        let rest = &stat[stat.rfind(')')? + 1..];
        let mut fields = rest.split_ascii_whitespace();
        let utime: u64 = fields.nth(11)?.parse().ok()?;
        let stime: u64 = fields.next()?.parse().ok()?;
        Some((utime + stime) * 10_000_000)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

fn sample_cpu() -> Option<u64> {
    if cpu_sampling() {
        thread_cpu_ns()
    } else {
        None
    }
}

fn push_record(record: SpanRecord) {
    RECORDS.push(record.id.0, record, ring_capacity());
}

/// Spans evicted from the span ring over the process lifetime
/// (monotonic; 0 until the ring first overflows).
pub fn spans_dropped() -> u64 {
    RECORDS.dropped_total()
}

/// RAII guard for one span; records a [`SpanRecord`] on drop.
///
/// Must drop on the thread that opened it (it restores that thread's
/// span stack).
#[derive(Debug)]
pub struct SpanGuard {
    state: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    id: SpanId,
    parent: SpanId,
    prev: SpanId,
    name: String,
    start: Instant,
    start_ns: u64,
    cpu_start: Option<u64>,
}

impl SpanGuard {
    /// The guard's span ID, [`SpanId::NONE`] when spans are disabled.
    pub fn id(&self) -> SpanId {
        self.state.as_ref().map_or(SpanId::NONE, |s| s.id)
    }
}

fn open(name: impl Into<String>, parent: SpanId) -> SpanGuard {
    if !enabled(ObsLevel::Spans) {
        return SpanGuard { state: None };
    }
    let id = SpanId(NEXT_ID.fetch_add(1, Ordering::Relaxed));
    let prev = CURRENT.with(|c| c.replace(id));
    let start = Instant::now();
    SpanGuard {
        state: Some(OpenSpan {
            id,
            parent,
            prev,
            name: name.into(),
            start,
            start_ns: start.duration_since(epoch()).as_nanos() as u64,
            cpu_start: sample_cpu(),
        }),
    }
}

/// Open a span parented under the current thread's innermost open span.
pub fn span(name: impl Into<String>) -> SpanGuard {
    open(name, current_span())
}

/// Open a span under an explicit parent — for worker threads whose
/// logical parent lives on another thread.
pub fn span_with_parent(name: impl Into<String>, parent: SpanId) -> SpanGuard {
    open(name, parent)
}

/// Record an already-measured duration as a finished span — for phase
/// timers accumulated across iterations (e.g. the ADMM local/consensus
/// phases), which no single RAII guard can bracket. The span is
/// backdated so it ends "now". Returns the new span's ID,
/// [`SpanId::NONE`] when spans are disabled.
pub fn record_span_duration(name: impl Into<String>, parent: SpanId, wall_ns: u64) -> SpanId {
    if !enabled(ObsLevel::Spans) {
        return SpanId::NONE;
    }
    let id = SpanId(NEXT_ID.fetch_add(1, Ordering::Relaxed));
    let end_ns = now_ns();
    push_record(SpanRecord {
        id,
        parent,
        name: name.into(),
        start_ns: end_ns.saturating_sub(wall_ns),
        wall_ns,
        cpu_ns: None,
        tid: current_tid(),
    });
    id
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.state.take() else { return };
        let wall_ns = s.start.elapsed().as_nanos() as u64;
        let cpu_ns = match s.cpu_start {
            Some(a) => thread_cpu_ns().map(|b| b.saturating_sub(a)),
            None => None,
        };
        CURRENT.with(|c| c.set(s.prev));
        push_record(SpanRecord {
            id: s.id,
            parent: s.parent,
            name: s.name,
            start_ns: s.start_ns,
            wall_ns,
            cpu_ns,
            tid: current_tid(),
        });
    }
}

/// Take every retained span, oldest first, starting a fresh
/// drop-accounting window in the span ring.
pub fn drain_spans() -> Vec<SpanRecord> {
    RECORDS.drain().0
}

/// Clone the retained spans without disturbing capture — the
/// live-reader view.
pub fn snapshot_spans() -> Vec<SpanRecord> {
    RECORDS.snapshot().0
}

/// Render finished spans as an indented tree, children under parents
/// in start order, with wall (and CPU, when known) milliseconds.
pub fn render_tree(records: &[SpanRecord]) -> String {
    let mut by_parent: std::collections::BTreeMap<SpanId, Vec<&SpanRecord>> = Default::default();
    for r in records {
        by_parent.entry(r.parent).or_default().push(r);
    }
    for children in by_parent.values_mut() {
        children.sort_by_key(|r| r.start_ns);
    }
    let known: std::collections::BTreeSet<SpanId> = records.iter().map(|r| r.id).collect();
    let mut out = String::new();
    fn emit(
        out: &mut String,
        by_parent: &std::collections::BTreeMap<SpanId, Vec<&SpanRecord>>,
        node: SpanId,
        depth: usize,
    ) {
        if let Some(children) = by_parent.get(&node) {
            for r in children {
                for _ in 0..depth {
                    out.push_str("  ");
                }
                out.push_str(&r.name);
                out.push_str(&format!(" {:.3}ms", r.wall_ns as f64 / 1e6));
                if let Some(cpu) = r.cpu_ns {
                    out.push_str(&format!(" (cpu {:.1}ms)", cpu as f64 / 1e6));
                }
                out.push('\n');
                emit(out, by_parent, r.id, depth + 1);
            }
        }
    }
    // Roots: explicit NONE parents plus orphans whose parent span was
    // never recorded (e.g. drained separately).
    emit(&mut out, &by_parent, SpanId::NONE, 0);
    for (parent, _) in by_parent.iter() {
        if *parent != SpanId::NONE && !known.contains(parent) {
            emit(&mut out, &by_parent, *parent, 0);
        }
    }
    out
}

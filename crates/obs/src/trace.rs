//! Chrome trace-event export: turn recorded spans and journal events
//! into a Perfetto-loadable JSON document.
//!
//! The output is the Chrome tracing "JSON object format": one object
//! with a `traceEvents` array that `ui.perfetto.dev` (or
//! `chrome://tracing`) opens directly. Three event shapes are emitted:
//!
//! * one **complete event** (`"ph":"X"`) per span — `ts`/`dur` in
//!   microseconds on the recording thread's track (`tid`), with the
//!   exact nanosecond fields and the span/parent IDs preserved under
//!   `args` so the export stays lossless;
//! * one **instant event** (`"ph":"i"`, thread scope) per journal
//!   record, on a dedicated `journal` track (tid 0); `args` holds the
//!   record's full JSONL object, so a trace embeds the journal verbatim;
//! * **metadata events** (`"ph":"M"`, `thread_name`) naming each track:
//!   labels registered via [`crate::set_thread_track`]
//!   (`admm-worker-3`, ...), `thread-<tid>` otherwise, and `journal`
//!   for the instants track.
//!
//! [`parse_trace_json`] is the inverse over the fields we own: it
//! rebuilds the [`SpanRecord`]s and [`EventRecord`]s from `args` (the
//! microsecond `ts`/`dur` are display-only), so
//! `parse_trace_json(export_trace_json(..))` round-trips exactly — a
//! property test in `crates/obs/tests` holds this for every event
//! variant.

use crate::journal::{record_from_json, to_json_line, EventRecord};
use crate::json::{self, escape_str, Json};
use crate::span::{SpanId, SpanRecord};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The process ID every track is emitted under (single-process trace).
const TRACE_PID: u64 = 1;

/// A parsed trace: the spans, journal events, and track labels a
/// [`export_trace_json`] document carries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Trace {
    /// Spans rebuilt from the complete (`"X"`) events.
    pub spans: Vec<SpanRecord>,
    /// Journal records rebuilt from the instant (`"i"`) events.
    pub events: Vec<EventRecord>,
    /// Track labels from `thread_name` metadata, keyed by `tid`.
    pub track_names: BTreeMap<u64, String>,
}

/// Nanoseconds → the microsecond decimal Chrome expects, exact to the
/// nanosecond (`1234567` → `"1234.567"`).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

/// Serialise spans + journal events (+ track labels, e.g. from
/// [`crate::thread_track_names`]) as a Chrome trace-event JSON document.
///
/// Open the result at <https://ui.perfetto.dev>: spans lay out per
/// thread track, journal events appear as instants on the `journal`
/// track, and clicking any slice shows the exact counters under "args".
pub fn export_trace_json(
    spans: &[SpanRecord],
    events: &[EventRecord],
    track_names: &BTreeMap<u64, String>,
) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |obj: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push_str(&obj);
    };

    // Track metadata: every tid that appears, named.
    let tids: std::collections::BTreeSet<u64> = spans.iter().map(|s| s.tid).collect();
    let mut names: Vec<(u64, String)> = Vec::new();
    for &tid in &tids {
        let name = track_names
            .get(&tid)
            .cloned()
            .unwrap_or_else(|| format!("thread-{tid}"));
        names.push((tid, name));
    }
    if !events.is_empty() {
        names.push((0, "journal".to_owned()));
    }
    for (tid, name) in names {
        push(
            format!(
                "{{\"ph\":\"M\",\"pid\":{TRACE_PID},\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":{}}}}}",
                escape_str(&name)
            ),
            &mut out,
        );
    }

    for s in spans {
        let mut obj = format!(
            "{{\"ph\":\"X\",\"pid\":{TRACE_PID},\"tid\":{},\"name\":{},\"cat\":\"span\",\
             \"ts\":{},\"dur\":{},\"args\":{{\"id\":{},\"parent\":{},\"start_ns\":{},\"wall_ns\":{}",
            s.tid,
            escape_str(&s.name),
            us(s.start_ns),
            us(s.wall_ns),
            s.id.0,
            s.parent.0,
            s.start_ns,
            s.wall_ns
        );
        if let Some(cpu) = s.cpu_ns {
            let _ = write!(obj, ",\"cpu_ns\":{cpu}");
        }
        obj.push_str("}}");
        push(obj, &mut out);
    }

    for e in events {
        // The args object is the record's JSONL line verbatim, so the
        // journal schema (and its parser) applies inside the trace too.
        push(
            format!(
                "{{\"ph\":\"i\",\"pid\":{TRACE_PID},\"tid\":0,\"name\":{},\"cat\":\"journal\",\
                 \"ts\":{},\"s\":\"t\",\"args\":{}}}",
                escape_str(e.event.kind()),
                us(e.t_ns),
                to_json_line(e)
            ),
            &mut out,
        );
    }

    out.push_str("]}");
    out
}

/// Parse a Chrome trace-event document produced by [`export_trace_json`]
/// back into its spans, journal events, and track labels. Unknown event
/// phases are ignored (so a trace decorated by other tools still
/// parses); a malformed span/instant is an error.
pub fn parse_trace_json(text: &str) -> Result<Trace, String> {
    let doc = json::parse(text)?;
    let items = match doc.get("traceEvents") {
        Some(Json::Arr(items)) => items,
        _ => return Err("missing traceEvents array".into()),
    };
    let req_u64 = |v: &Json, key: &str| {
        v.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("missing/invalid u64 field {key:?}"))
    };
    let mut trace = Trace::default();
    for (i, item) in items.iter().enumerate() {
        let at = |e: String| format!("traceEvents[{i}]: {e}");
        let ph = item
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| at("missing ph".into()))?;
        match ph {
            "X" => {
                let args = item
                    .get("args")
                    .ok_or_else(|| at("span without args".into()))?;
                trace.spans.push(SpanRecord {
                    id: SpanId(req_u64(args, "id").map_err(&at)?),
                    parent: SpanId(req_u64(args, "parent").map_err(&at)?),
                    name: item
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or_else(|| at("span without name".into()))?
                        .to_owned(),
                    start_ns: req_u64(args, "start_ns").map_err(&at)?,
                    wall_ns: req_u64(args, "wall_ns").map_err(&at)?,
                    cpu_ns: args.get("cpu_ns").and_then(Json::as_u64),
                    tid: req_u64(item, "tid").map_err(&at)?,
                });
            }
            "i" | "I" => {
                let args = item
                    .get("args")
                    .ok_or_else(|| at("instant without args".into()))?;
                trace.events.push(record_from_json(args).map_err(&at)?);
            }
            "M" if item.get("name").and_then(Json::as_str) == Some("thread_name") => {
                if let (Ok(tid), Some(name)) = (
                    req_u64(item, "tid"),
                    item.get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(Json::as_str),
                ) {
                    trace.track_names.insert(tid, name.to_owned());
                }
            }
            _ => {}
        }
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::journal::{DegradationRung, Event, GroundCounters};

    fn sample_spans() -> Vec<SpanRecord> {
        vec![
            SpanRecord {
                id: SpanId(1),
                parent: SpanId::NONE,
                name: "solve".into(),
                start_ns: 1_234_567,
                wall_ns: 987_654,
                cpu_ns: Some(500_000),
                tid: 1,
            },
            SpanRecord {
                id: SpanId(2),
                parent: SpanId(1),
                name: "solve/worker-0".into(),
                start_ns: 1_300_001,
                wall_ns: 900_000,
                cpu_ns: None,
                tid: 2,
            },
        ]
    }

    fn sample_events() -> Vec<EventRecord> {
        vec![
            EventRecord {
                seq: 0,
                t_ns: 1_000,
                span: SpanId(1),
                event: Event::Ground {
                    rule: "error-link \"σ\"".into(),
                    counters: GroundCounters {
                        substitutions: 12,
                        potentials: 3,
                        constant_loss: -2.5,
                        wall_ns: 777,
                        ..GroundCounters::default()
                    },
                },
            },
            EventRecord {
                seq: 1,
                t_ns: 2_500,
                span: SpanId::NONE,
                event: Event::Degradation(DegradationRung::FreshGround {
                    reason: "state mismatch".into(),
                }),
            },
        ]
    }

    #[test]
    fn export_parses_back_losslessly() {
        let spans = sample_spans();
        let events = sample_events();
        let mut tracks = BTreeMap::new();
        tracks.insert(2u64, "admm-worker-0".to_owned());
        let doc = export_trace_json(&spans, &events, &tracks);
        let trace = parse_trace_json(&doc).expect("trace parses");
        assert_eq!(trace.spans, spans);
        assert_eq!(trace.events, events);
        assert_eq!(
            trace.track_names.get(&2).map(String::as_str),
            Some("admm-worker-0")
        );
        assert_eq!(
            trace.track_names.get(&1).map(String::as_str),
            Some("thread-1")
        );
        assert_eq!(
            trace.track_names.get(&0).map(String::as_str),
            Some("journal")
        );
    }

    #[test]
    fn timestamps_are_exact_microsecond_decimals() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn emitted_document_is_valid_json_with_perfetto_fields() {
        let doc = export_trace_json(&sample_spans(), &sample_events(), &BTreeMap::new());
        let v = json::parse(&doc).expect("valid JSON");
        let Some(Json::Arr(items)) = v.get("traceEvents") else {
            panic!("traceEvents missing")
        };
        for item in items {
            let ph = item.get("ph").and_then(Json::as_str).unwrap();
            assert!(matches!(ph, "X" | "i" | "M"), "unexpected ph {ph}");
            assert!(item.get("pid").and_then(Json::as_u64).is_some());
            assert!(item.get("tid").and_then(Json::as_u64).is_some());
            if ph == "X" {
                assert!(item.get("ts").and_then(Json::as_f64).unwrap() >= 0.0);
                assert!(item.get("dur").and_then(Json::as_f64).unwrap() >= 0.0);
            }
            if ph == "i" {
                assert_eq!(item.get("s").and_then(Json::as_str), Some("t"));
            }
        }
    }

    #[test]
    fn empty_trace_still_loads() {
        let doc = export_trace_json(&[], &[], &BTreeMap::new());
        let trace = parse_trace_json(&doc).expect("empty trace parses");
        assert!(trace.spans.is_empty() && trace.events.is_empty());
    }
}

//! Bounded flight-recorder ring: the overwrite-oldest buffer behind the
//! event journal and the span sink, plus the shared `CMS_OBS_RING`
//! capacity knob.
//!
//! A long-running process cannot keep an unbounded `Vec` of telemetry
//! records. [`Ring`] keeps the **last** `capacity` items: when full, a
//! push evicts the oldest item and bumps a monotonic drop counter, so
//! loss is always visible rather than silent. Two views exist:
//! [`Ring::snapshot`] clones the live window for readers that must not
//! disturb capture (the dump-on-degradation hook), and [`Ring::drain`]
//! takes the window and starts a fresh drop-accounting *window*.
//!
//! Drop accounting is exact per window: each pushed item carries a
//! monotonic `key` (the journal's `seq`), and the ring remembers the
//! first key admitted since the last drain (`base_key`) together with
//! the number of items evicted since then (`dropped`). With contiguous
//! keys the invariant `first_retained_key == base_key + dropped` holds,
//! which `journal_check` verifies against exported files.
//!
//! The ring is a mutex around a `VecDeque` with a tiny critical section
//! (push/pop, no allocation in steady state) — honest and adequate for
//! the gated ≤2% overhead budget; lock poisoning follows the
//! `PoisonError::into_inner` policy (records are plain data, every
//! write is complete before the lock drops).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Default ring capacity when `CMS_OBS_RING` is unset: large enough to
/// hold minutes of steady-state pipeline events, small enough to keep
/// resident memory bounded.
pub const DEFAULT_RING_CAPACITY: usize = 65_536;

/// Drop-accounting state of one ring window, reported alongside every
/// snapshot/drain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingWindow {
    /// Key of the first item admitted since the last drain, `None` when
    /// nothing was pushed in this window.
    pub base_key: Option<u64>,
    /// Items evicted (overwritten) in this window.
    pub dropped: u64,
    /// Items evicted over the ring's whole lifetime (monotonic).
    pub dropped_total: u64,
}

struct Inner<T> {
    slots: VecDeque<T>,
    base_key: Option<u64>,
    dropped_window: u64,
}

/// A bounded overwrite-oldest buffer with per-window drop accounting.
pub struct Ring<T> {
    inner: Mutex<Inner<T>>,
    dropped_total: AtomicU64,
}

impl<T> Ring<T> {
    /// An empty ring. Capacity is supplied per push so the global env
    /// knob is resolved lazily by the owner, not here.
    pub const fn new() -> Ring<T> {
        Ring {
            inner: Mutex::new(Inner {
                slots: VecDeque::new(),
                base_key: None,
                dropped_window: 0,
            }),
            dropped_total: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Push `item` under monotonic `key`, evicting the oldest item when
    /// the window already holds `capacity` items (`None` = unbounded).
    pub fn push(&self, key: u64, item: T, capacity: Option<usize>) {
        let mut inner = self.lock();
        if inner.base_key.is_none() {
            inner.base_key = Some(key);
        }
        if let Some(cap) = capacity {
            if cap == 0 {
                // A zero-capacity ring admits nothing: the push itself
                // is the drop.
                inner.dropped_window += 1;
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
                return;
            }
            while inner.slots.len() >= cap {
                inner.slots.pop_front();
                inner.dropped_window += 1;
                self.dropped_total.fetch_add(1, Ordering::Relaxed);
            }
        }
        inner.slots.push_back(item);
    }

    /// Take the retained window (oldest first) and start a new
    /// drop-accounting window.
    pub fn drain(&self) -> (Vec<T>, RingWindow) {
        let mut inner = self.lock();
        let window = RingWindow {
            base_key: inner.base_key.take(),
            dropped: std::mem::take(&mut inner.dropped_window),
            dropped_total: self.dropped_total.load(Ordering::Relaxed),
        };
        (std::mem::take(&mut inner.slots).into(), window)
    }

    /// Items evicted over the ring's whole lifetime (monotonic).
    pub fn dropped_total(&self) -> u64 {
        self.dropped_total.load(Ordering::Relaxed)
    }

    /// Retained items right now.
    pub fn len(&self) -> usize {
        self.lock().slots.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T: Clone> Ring<T> {
    /// Clone the retained window (oldest first) without disturbing
    /// capture — the live-reader / crash-dump view.
    pub fn snapshot(&self) -> (Vec<T>, RingWindow) {
        let inner = self.lock();
        let window = RingWindow {
            base_key: inner.base_key,
            dropped: inner.dropped_window,
            dropped_total: self.dropped_total.load(Ordering::Relaxed),
        };
        (inner.slots.iter().cloned().collect(), window)
    }
}

impl<T> Default for Ring<T> {
    fn default() -> Ring<T> {
        Ring::new()
    }
}

// ---------------------------------------------------------------------------
// Capacity configuration (CMS_OBS_RING)
// ---------------------------------------------------------------------------

/// Sentinel in the override slot meaning "no override installed".
const CAP_UNSET: usize = usize::MAX;

static CAP_OVERRIDE: AtomicUsize = AtomicUsize::new(CAP_UNSET);

fn env_capacity() -> Option<usize> {
    static ENV_CAP: OnceLock<Option<usize>> = OnceLock::new();
    *ENV_CAP.get_or_init(|| match std::env::var("CMS_OBS_RING") {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => {
                eprintln!(
                    "warning: CMS_OBS_RING={raw:?} is not a capacity; \
                     using default {DEFAULT_RING_CAPACITY}"
                );
                Some(DEFAULT_RING_CAPACITY)
            }
        },
        Err(_) => Some(DEFAULT_RING_CAPACITY),
    })
}

/// The active flight-recorder capacity: `Some(n)` keeps the last `n`
/// records, `None` is unbounded.
///
/// Resolved from `CMS_OBS_RING` (read once; `0` means unbounded,
/// malformed values warn once and fall back to
/// [`DEFAULT_RING_CAPACITY`]) unless a programmatic
/// [`set_ring_capacity_override`] is in effect.
pub fn ring_capacity() -> Option<usize> {
    match CAP_OVERRIDE.load(Ordering::Relaxed) {
        CAP_UNSET => env_capacity(),
        0 => None,
        n => Some(n),
    }
}

/// Programmatically force the ring capacity, overriding `CMS_OBS_RING`
/// (`None` or `Some(0)` = unbounded). Exists so benches and tests can
/// vary capacity within one process; affects subsequent pushes only.
pub fn set_ring_capacity_override(capacity: Option<usize>) {
    CAP_OVERRIDE.store(capacity.unwrap_or(0), Ordering::Relaxed);
}

/// Drop a [`set_ring_capacity_override`] and fall back to the
/// `CMS_OBS_RING`-derived capacity.
pub fn clear_ring_capacity_override() {
    CAP_OVERRIDE.store(CAP_UNSET, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_ring_retains_everything() {
        let ring: Ring<u64> = Ring::new();
        for k in 0..100 {
            ring.push(k, k, None);
        }
        let (items, window) = ring.drain();
        assert_eq!(items.len(), 100);
        assert_eq!(window.base_key, Some(0));
        assert_eq!(window.dropped, 0);
        assert_eq!(ring.dropped_total(), 0);
    }

    #[test]
    fn full_ring_overwrites_oldest_and_counts_drops() {
        let ring: Ring<u64> = Ring::new();
        for k in 0..10 {
            ring.push(k, k, Some(4));
        }
        assert_eq!(ring.len(), 4);
        let (items, window) = ring.snapshot();
        assert_eq!(items, vec![6, 7, 8, 9]);
        assert_eq!(window.base_key, Some(0));
        assert_eq!(window.dropped, 6);
        assert_eq!(window.dropped_total, 6);
        // The retained window starts exactly `dropped` past the base.
        assert_eq!(items[0], window.base_key.unwrap() + window.dropped);
    }

    #[test]
    fn drain_starts_a_fresh_window_but_total_is_monotonic() {
        let ring: Ring<u64> = Ring::new();
        for k in 0..6 {
            ring.push(k, k, Some(4));
        }
        let (_, first) = ring.drain();
        assert_eq!(first.dropped, 2);
        for k in 6..8 {
            ring.push(k, k, Some(4));
        }
        let (items, second) = ring.snapshot();
        assert_eq!(items, vec![6, 7]);
        assert_eq!(second.base_key, Some(6));
        assert_eq!(second.dropped, 0);
        assert_eq!(second.dropped_total, 2);
        assert_eq!(ring.dropped_total(), 2);
    }

    #[test]
    fn snapshot_does_not_disturb_capture() {
        let ring: Ring<u64> = Ring::new();
        ring.push(0, 0, Some(8));
        let (before, _) = ring.snapshot();
        ring.push(1, 1, Some(8));
        let (after, window) = ring.snapshot();
        assert_eq!(before, vec![0]);
        assert_eq!(after, vec![0, 1]);
        assert_eq!(window.base_key, Some(0));
    }

    #[test]
    fn zero_capacity_drops_every_push() {
        let ring: Ring<u64> = Ring::new();
        for k in 0..3 {
            ring.push(k, k, Some(0));
        }
        let (items, window) = ring.drain();
        assert!(items.is_empty());
        assert_eq!(window.dropped, 3);
        assert_eq!(window.base_key, Some(0));
    }
}

//! Best-effort peak resident-set size, for bench output.

/// Peak RSS (high-water mark) of the current process, in bytes.
///
/// Linux: the `VmHWM` line of `/proc/self/status` (reported in kB).
/// Other platforms: `None` — callers must treat the value as
/// best-effort.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
        let kb: u64 = line
            .trim_start_matches("VmHWM:")
            .trim()
            .trim_end_matches("kB")
            .trim()
            .parse()
            .ok()?;
        Some(kb * 1024)
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

#[cfg(test)]
mod tests {
    #[test]
    #[cfg(target_os = "linux")]
    fn peak_rss_is_positive_on_linux() {
        let rss = super::peak_rss_bytes().expect("VmHWM should parse on Linux");
        assert!(rss > 0);
    }
}

//! Metrics registry: named counters, gauges and fixed-bucket histograms
//! with atomic increments, plus a snapshot/diff API.
//!
//! Handles are `Arc`s handed out by the registry; hot paths fetch a
//! handle once (outside the loop) and then pay one atomic RMW per
//! recording. Snapshots are plain `BTreeMap`s so diffs and assertions
//! read naturally in tests.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins floating-point gauge (f64 bits in an atomic word).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A histogram over fixed, caller-supplied bucket upper bounds.
///
/// A value `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; values above every bound land in the implicit overflow
/// bucket. Bounds are immutable after registration, so concurrent
/// recording is a single atomic increment.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of recorded values as f64 bits, CAS-accumulated.
    sum_bits: AtomicU64,
}

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Record one observation.
    pub fn record(&self, v: f64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < v)
            .min(self.buckets.len() - 1);
        // `partition_point` returns the first bound >= v, i.e. the
        // first bucket that can hold it; NaN compares false and falls
        // into the overflow bucket.
        let idx = if v.is_nan() {
            self.buckets.len() - 1
        } else {
            idx
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The bucket upper bounds this histogram was registered with.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Point-in-time copy of the bucket counts, total count and sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: f64::from_bits(self.sum_bits.load(Ordering::Relaxed)),
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (the final overflow bucket has no bound).
    pub bounds: Vec<f64>,
    /// One count per bound plus the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// The process-wide table of named metrics.
///
/// Registration takes a lock; recording through the returned handles
/// does not. Registering the same name twice returns the same handle
/// (for histograms the first registration's bounds win).
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Registry {
    /// Fetch-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.counters.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(c) = map.get(name) {
            return Arc::clone(c);
        }
        let c = Arc::new(Counter::default());
        map.insert(name.to_owned(), Arc::clone(&c));
        c
    }

    /// Fetch-or-create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.gauges.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(g) = map.get(name) {
            return Arc::clone(g);
        }
        let g = Arc::new(Gauge::default());
        map.insert(name.to_owned(), Arc::clone(&g));
        g
    }

    /// Fetch-or-create the histogram `name` with the given bucket upper
    /// bounds (ignored if the name already exists).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        let mut map = self
            .histograms
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(Histogram::new(bounds));
        map.insert(name.to_owned(), Arc::clone(&h));
        h
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A named counter that resolves its [`Registry`] handle on first use
/// and caches it for the life of the process.
///
/// `static` instances let per-call hot paths (e.g. the per-flip
/// ground/reground/solve bookkeeping the overhead gate times) skip the
/// registry lock and by-name lookup entirely after the first recording
/// — one relaxed atomic add per call thereafter. The handle itself is
/// level-agnostic, exactly like an `Arc<Counter>` fetched manually;
/// callers gate on [`crate::enabled`].
#[derive(Debug)]
pub struct LazyCounter {
    name: &'static str,
    cell: OnceLock<Arc<Counter>>,
}

impl LazyCounter {
    /// A handle for the counter `name`, not yet resolved.
    pub const fn new(name: &'static str) -> LazyCounter {
        LazyCounter {
            name,
            cell: OnceLock::new(),
        }
    }

    fn handle(&self) -> &Counter {
        self.cell
            .get_or_init(|| crate::registry().counter(self.name))
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.handle().add(n);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.handle().inc();
    }
}

/// A named histogram resolved against the [`Registry`] on first use,
/// the histogram counterpart of [`LazyCounter`]. The bounds apply only
/// if this handle performs the first registration of the name.
#[derive(Debug)]
pub struct LazyHistogram {
    name: &'static str,
    bounds: &'static [f64],
    cell: OnceLock<Arc<Histogram>>,
}

impl LazyHistogram {
    /// A handle for the histogram `name` with `bounds`, not yet
    /// resolved.
    pub const fn new(name: &'static str, bounds: &'static [f64]) -> LazyHistogram {
        LazyHistogram {
            name,
            bounds,
            cell: OnceLock::new(),
        }
    }

    /// The resolved registry handle (for loops that record many
    /// observations against a pre-fetched reference).
    pub fn handle(&self) -> &Histogram {
        self.cell
            .get_or_init(|| crate::registry().histogram(self.name, self.bounds))
    }

    /// Record one observation.
    #[inline]
    pub fn record(&self, v: f64) {
        self.handle().record(v);
    }
}

/// Point-in-time copy of a [`Registry`], diffable against an earlier
/// snapshot.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counters and histogram counts accumulated since `earlier`
    /// (counters absent from `earlier` count from zero); gauges keep
    /// their latest value. Saturating, so a reset registry diffs to
    /// zero instead of wrapping.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, &v)| {
                let base = earlier.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(base))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut h = h.clone();
                if let Some(base) = earlier.histograms.get(k) {
                    if base.bounds == h.bounds {
                        for (b, base_b) in h.buckets.iter_mut().zip(&base.buckets) {
                            *b = b.saturating_sub(*base_b);
                        }
                        h.count = h.count.saturating_sub(base.count);
                        h.sum -= base.sum;
                    }
                }
                (k.clone(), h)
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }

    /// Counter value by name, zero when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_bucket_boundaries_are_inclusive_upper_bounds() {
        let h = Histogram::new(&[1.0, 10.0, 100.0]);
        for v in [0.0, -5.0, 1.0] {
            h.record(v); // <= 1.0
        }
        h.record(1.0000001); // (1, 10]
        h.record(10.0); // (1, 10]
        h.record(100.0); // (10, 100]
        h.record(100.1); // overflow
        h.record(f64::INFINITY); // overflow
        h.record(f64::NAN); // overflow (unordered)
        let s = h.snapshot();
        assert_eq!(s.buckets, vec![3, 2, 1, 3]);
        assert_eq!(s.count, 9);
    }

    #[test]
    fn registry_returns_shared_handles() {
        let r = Registry::default();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x").get(), 3);
        let h1 = r.histogram("h", &[1.0]);
        let h2 = r.histogram("h", &[99.0]); // first bounds win
        assert_eq!(h2.bounds(), &[1.0]);
        h1.record(0.5);
        assert_eq!(h2.snapshot().count, 1);
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_histograms() {
        let r = Registry::default();
        let c = r.counter("n");
        let h = r.histogram("h", &[10.0]);
        c.add(5);
        h.record(3.0);
        let before = r.snapshot();
        c.add(7);
        h.record(30.0);
        r.gauge("g").set(2.5);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("n"), 7);
        assert_eq!(d.histograms["h"].buckets, vec![0, 1]);
        assert_eq!(d.histograms["h"].count, 1);
        assert!((d.histograms["h"].sum - 30.0).abs() < 1e-9);
        assert_eq!(d.gauges["g"], 2.5);
    }

    #[test]
    fn lazy_handles_resolve_to_the_global_registry() {
        static C: LazyCounter = LazyCounter::new("test.lazy.counter");
        C.add(2);
        C.inc();
        assert_eq!(crate::registry().counter("test.lazy.counter").get(), 3);
        static H: LazyHistogram = LazyHistogram::new("test.lazy.hist", &[1.0]);
        H.record(0.5);
        H.handle().record(2.0);
        let s = crate::registry()
            .histogram("test.lazy.hist", &[])
            .snapshot();
        assert_eq!(s.buckets, vec![1, 1]);
        assert_eq!(s.bounds, vec![1.0]);
    }

    #[test]
    fn gauge_stores_last_write() {
        let g = Gauge::default();
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(g.get(), -2.25);
    }
}

//! Integration tests for the telemetry core: span nesting/parenting
//! under `std::thread::scope` parallelism, snapshot diffing across the
//! global registry, and a property test that the JSONL export
//! round-trips every event variant.
//!
//! The span sink, journal and level are process-global, so every test
//! serialises on one mutex and drains shared state before running.

use cms_obs::{
    drain_journal, drain_spans, emit, export_jsonl, export_trace_json, parse_jsonl,
    parse_trace_json, render_span_tree, render_tree, set_level_override, span, span_with_parent,
    DegradationRung, Event, EventRecord, GroundCounters, ObsLevel, SpanId, SpanRecord,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Mutex;

static SERIAL: Mutex<()> = Mutex::new(());

fn exclusive() -> std::sync::MutexGuard<'static, ()> {
    let guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    drain_spans();
    drain_journal();
    guard
}

#[test]
fn spans_nest_on_one_thread_and_parent_explicitly_across_scoped_threads() {
    let _guard = exclusive();
    set_level_override(ObsLevel::Spans);

    let solve = span("solve");
    let solve_id = solve.id();
    assert_ne!(solve_id, SpanId::NONE);
    {
        let inner = span("solve/consensus");
        assert_ne!(inner.id(), solve_id);
    }
    // Worker threads have no ambient parent: without an explicit one
    // they would record as roots, with one they attribute under the
    // coordinating span.
    std::thread::scope(|scope| {
        for worker in 0..3 {
            scope.spawn(move || {
                let _w = span_with_parent(format!("solve/worker-{worker}"), solve_id);
                let _nested = span("solve/worker-local");
            });
        }
    });
    drop(solve);
    set_level_override(ObsLevel::Off);

    let records = drain_spans();
    assert_eq!(records.len(), 8);
    let by_name = |name: &str| {
        records
            .iter()
            .find(|r| r.name == name)
            .unwrap_or_else(|| panic!("span {name} missing"))
    };
    assert_eq!(by_name("solve").parent, SpanId::NONE);
    assert_eq!(by_name("solve/consensus").parent, solve_id);
    for worker in 0..3 {
        let w = by_name(&format!("solve/worker-{worker}"));
        assert_eq!(w.parent, solve_id, "worker spans parent explicitly");
    }
    // Each worker-local span nested under that worker's thread-local
    // current span, not under the coordinator.
    let worker_ids: Vec<SpanId> = records
        .iter()
        .filter(|r| r.name.starts_with("solve/worker-") && r.name != "solve/worker-local")
        .map(|r| r.id)
        .collect();
    let locals: Vec<_> = records
        .iter()
        .filter(|r| r.name == "solve/worker-local")
        .collect();
    assert_eq!(locals.len(), 3);
    for local in &locals {
        assert!(worker_ids.contains(&local.parent));
    }
    // All spans observed a monotonic clock and appear in the render.
    let tree = render_span_tree(&records);
    assert!(tree.contains("solve"));
    assert!(tree.contains("solve/worker-1"));

    // Guards are inert below the Spans level.
    let off = span("ignored");
    assert_eq!(off.id(), SpanId::NONE);
    drop(off);
    assert!(drain_spans().is_empty());
}

#[test]
fn journal_records_attach_to_the_emitting_spans() {
    let _guard = exclusive();
    set_level_override(ObsLevel::Journal);

    let outer = span("pipeline");
    let outer_id = outer.id();
    emit(Event::Fault {
        fault: "poison-duals".into(),
    });
    drop(outer);
    emit(Event::Degradation(DegradationRung::ColdSolve {
        health: "stalled@40".into(),
    }));
    set_level_override(ObsLevel::Off);

    let spans = drain_spans();
    let events = drain_journal();
    assert_eq!(events.len(), 2);
    assert_eq!(events[0].span, outer_id);
    assert_eq!(events[1].span, SpanId::NONE);
    assert!(events[0].seq < events[1].seq);
    let tree = render_tree(&spans, &events);
    assert!(tree.contains("pipeline"));
    assert!(tree.contains("poison-duals"));
    assert!(tree.contains("degradation rung 3"));
}

#[test]
fn journal_is_silent_below_journal_level() {
    let _guard = exclusive();
    set_level_override(ObsLevel::Spans);
    emit(Event::Fault {
        fault: "ignored".into(),
    });
    set_level_override(ObsLevel::Off);
    assert!(drain_journal().is_empty());
}

fn tricky_strings() -> Vec<String> {
    vec![
        String::new(),
        "rule#0".into(),
        "stalled@40".into(),
        "quote\" slash\\ nl\n tab\t".into(),
        "unicode — σ \u{1}".into(),
    ]
}

fn counters_strategy() -> impl Strategy<Value = GroundCounters> {
    (
        (0u64..1_000_000, 0u64..1_000_000, 0u64..1_000, 0u64..1_000),
        (-1e9f64..1e9, 0u64..1_000_000, 0u64..1_000_000),
        (
            0u64..1_000_000,
            0u64..1_000_000,
            0u64..10_000,
            0u64..10_000,
            0u64..10_000,
        ),
        (0u64..16, 0u64..16, 0u64..10_000_000_000),
    )
        .prop_map(|(a, b, c, d)| GroundCounters {
            substitutions: a.0,
            potentials: a.1,
            constraints: a.2,
            pruned: a.3,
            constant_loss: b.0,
            candidates_probed: b.1,
            candidates_scanned: b.2,
            terms_reused: c.0,
            terms_recomputed: c.1,
            arith_bindings_spliced: c.2,
            entries_coalesced: c.3,
            sources_deduped: c.4,
            fallback_fresh_grounds: d.0,
            solver_restarts: d.1,
            wall_ns: d.2,
        })
}

fn event_strategy() -> impl Strategy<Value = Event> {
    let strings = prop::sample::select(tricky_strings());
    prop_oneof![
        (
            (0u64..100, 0u64..10_000, 0u64..1_000_000, 0u64..1_000_000),
            (0u64..1_000_000, 0u64..1_000_000),
            (0u64..100_000, 0u64..100_000, 0u64..10_000_000_000),
        )
            .prop_map(|(a, b, c)| Event::Chase {
                tgds: a.0,
                trie_nodes: a.1,
                prefix_bindings_computed: a.2,
                prefix_bindings_reused: a.3,
                candidates_probed: b.0,
                candidates_scanned: b.1,
                firings: c.0,
                tuples_emitted: c.1,
                wall_ns: c.2,
            }),
        (prop::sample::select(tricky_strings()), counters_strategy())
            .prop_map(|(rule, counters)| Event::Ground { rule, counters }),
        (0u64..64, counters_strategy())
            .prop_map(|(rules, counters)| Event::Reground { rules, counters }),
        (
            (0u64..100_000, any::<bool>(), 0u64..8),
            prop::sample::select(tricky_strings()),
            (-1e6f64..1e6, 0f64..10.0),
            (0u64..10_000_000_000, 0u64..10_000_000_000),
        )
            .prop_map(|(a, health, obj, t)| Event::Solve {
                iterations: a.0,
                converged: a.1,
                restarts: a.2,
                health,
                objective: obj.0,
                max_violation: obj.1,
                local_ns: t.0,
                consensus_ns: t.1,
            }),
        (
            0u64..1_000,
            prop::sample::select(tricky_strings()),
            0usize..4
        )
            .prop_map(|(n, s, variant)| Event::Degradation(match variant {
                0 => DegradationRung::DroppedNonFiniteDuals { dropped: n },
                1 => DegradationRung::FreshGround { reason: s },
                2 => DegradationRung::ColdSolve { health: s },
                _ => DegradationRung::FreshGroundColdSolve { health: s },
            })),
        strings.prop_map(|fault| Event::Fault { fault }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn jsonl_export_round_trips_every_event_variant(
        events in prop::collection::vec(event_strategy(), 1..8),
        seq0 in 0u64..1_000_000,
        span in 0u64..1_000,
    ) {
        let records: Vec<EventRecord> = events
            .into_iter()
            .enumerate()
            .map(|(i, event)| EventRecord {
                seq: seq0 + i as u64,
                t_ns: seq0.wrapping_mul(31).wrapping_add(i as u64 * 17) % 10_000_000_000,
                span: SpanId(span),
                event,
            })
            .collect();
        let jsonl = export_jsonl(&records);
        let parsed = parse_jsonl(&jsonl).expect("export must parse");
        prop_assert_eq!(parsed, records);
    }
}

fn span_strategy() -> impl Strategy<Value = SpanRecord> {
    (
        (1u64..1_000, 0u64..1_000),
        prop::sample::select(tricky_strings()),
        (0u64..10_000_000_000, 0u64..10_000_000_000),
        prop::option::of(0u64..10_000_000_000),
        // tid 0 is reserved for the journal instants track.
        1u64..8,
    )
        .prop_map(|(ids, name, t, cpu_ns, tid)| SpanRecord {
            id: SpanId(ids.0),
            parent: SpanId(ids.1),
            name,
            start_ns: t.0,
            wall_ns: t.1,
            cpu_ns,
            tid,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]
    #[test]
    fn trace_export_is_perfetto_valid_and_lossless(
        spans in prop::collection::vec(span_strategy(), 0..8),
        events in prop::collection::vec(event_strategy(), 0..8),
        named in prop::collection::vec(any::<bool>(), 8),
    ) {
        let records: Vec<EventRecord> = events
            .into_iter()
            .enumerate()
            .map(|(i, event)| EventRecord {
                seq: i as u64 * 3,
                t_ns: i as u64 * 1_000_003,
                span: SpanId(i as u64 % 5),
                event,
            })
            .collect();
        // Name an arbitrary subset of the span tracks; unnamed tids must
        // come back as "thread-<tid>".
        let mut tracks = BTreeMap::new();
        for s in &spans {
            if named[s.tid as usize] {
                tracks.insert(s.tid, format!("worker-{}", s.tid));
            }
        }

        let doc = export_trace_json(&spans, &records, &tracks);

        // Perfetto structural invariants: the document is one JSON object
        // whose traceEvents all carry a known phase, pid/tid, and the
        // shape that phase requires (ts/dur on complete events, thread
        // scope on instants, thread_name args on metadata).
        let parsed_json = cms_obs::json::parse(&doc).expect("trace is valid JSON");
        let items = match parsed_json.get("traceEvents") {
            Some(cms_obs::json::Json::Arr(items)) => items,
            other => panic!("traceEvents missing: {other:?}"),
        };
        for item in items {
            let ph = item.get("ph").and_then(cms_obs::json::Json::as_str).unwrap_or("?");
            prop_assert!(matches!(ph, "X" | "i" | "M"), "unexpected ph {}", ph);
            prop_assert!(item.get("pid").and_then(cms_obs::json::Json::as_u64).is_some());
            prop_assert!(item.get("tid").and_then(cms_obs::json::Json::as_u64).is_some());
            match ph {
                "X" => {
                    prop_assert!(item.get("name").and_then(cms_obs::json::Json::as_str).is_some());
                    prop_assert!(item.get("ts").and_then(cms_obs::json::Json::as_f64).unwrap() >= 0.0);
                    prop_assert!(item.get("dur").and_then(cms_obs::json::Json::as_f64).unwrap() >= 0.0);
                }
                "i" => {
                    prop_assert_eq!(item.get("s").and_then(cms_obs::json::Json::as_str), Some("t"));
                    prop_assert!(item.get("args").is_some());
                }
                _ => {
                    prop_assert!(item
                        .get("args")
                        .and_then(|a| a.get("name"))
                        .and_then(cms_obs::json::Json::as_str)
                        .is_some());
                }
            }
        }

        // export ∘ parse is the identity on spans and events, and every
        // track that appears gets the registered (or fallback) label.
        let trace = parse_trace_json(&doc).expect("trace parses back");
        prop_assert_eq!(&trace.spans, &spans);
        prop_assert_eq!(&trace.events, &records);
        for s in &spans {
            let expect = tracks
                .get(&s.tid)
                .cloned()
                .unwrap_or_else(|| format!("thread-{}", s.tid));
            prop_assert_eq!(trace.track_names.get(&s.tid), Some(&expect));
        }
        if !records.is_empty() {
            prop_assert_eq!(trace.track_names.get(&0).map(String::as_str), Some("journal"));
        }
    }
}

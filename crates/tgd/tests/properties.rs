//! Property-based tests for dependencies, matching, and the chase.

use cms_data::{Instance, RelId, Schema, Value};
use cms_tgd::{
    canonical_key, chase, chase_canonical, chase_one, chase_one_canonical, match_conjunction, Atom,
    ChaseEngine, FirePlan, StTgd, Term, VarId,
};
use proptest::prelude::*;

/// A random source instance over two relations r0/2 and r1/2 with a small
/// constant pool (shared pool ⇒ joins happen).
fn arb_instance() -> impl Strategy<Value = Instance> {
    (
        prop::collection::vec((0u32..5, 0u32..5), 0..10),
        prop::collection::vec((0u32..5, 0u32..5), 0..10),
    )
        .prop_map(|(r0, r1)| {
            let mut inst = Instance::new();
            for (a, b) in r0 {
                inst.insert_ground(RelId(0), &[&format!("v{a}"), &format!("v{b}")]);
            }
            for (a, b) in r1 {
                inst.insert_ground(RelId(1), &[&format!("v{a}"), &format!("v{b}")]);
            }
            inst
        })
}

/// A random st tgd: body over r0, r1 (1–2 atoms), head over target rels
/// t0/2, t1/2 (1–2 atoms), variables drawn from a pool of 4 (head-only
/// variables are existential by construction).
fn arb_tgd() -> impl Strategy<Value = StTgd> {
    let body_atom = (0u32..2, 0u32..3, 0u32..3)
        .prop_map(|(r, a, b)| Atom::new(RelId(r), vec![Term::Var(VarId(a)), Term::Var(VarId(b))]));
    let head_atom = (0u32..2, 0u32..5, 0u32..5)
        .prop_map(|(r, a, b)| Atom::new(RelId(r), vec![Term::Var(VarId(a)), Term::Var(VarId(b))]));
    (
        prop::collection::vec(body_atom, 1..3),
        prop::collection::vec(head_atom, 1..3),
    )
        .prop_map(|(body, head)| StTgd::new(body, head, vec![]))
}

proptest! {
    /// Every binding returned by the matcher actually satisfies every atom.
    #[test]
    fn matcher_bindings_are_sound(inst in arb_instance(), tgd in arb_tgd()) {
        let bindings = match_conjunction(&tgd.body, &inst, tgd.num_vars());
        for binding in &bindings {
            for atom in &tgd.body {
                let row: Vec<Value> = atom
                    .terms
                    .iter()
                    .map(|t| t.ground(binding))
                    .collect();
                prop_assert!(inst.contains(atom.rel, &row), "unsound binding");
            }
        }
    }

    /// The matcher finds *all* satisfying bindings (completeness, checked
    /// against brute force over the active domain).
    #[test]
    fn matcher_is_complete_on_single_joins(inst in arb_instance()) {
        // body: r0(x, y) & r1(y, z)
        let body = vec![
            Atom::new(RelId(0), vec![Term::Var(VarId(0)), Term::Var(VarId(1))]),
            Atom::new(RelId(1), vec![Term::Var(VarId(1)), Term::Var(VarId(2))]),
        ];
        let found = match_conjunction(&body, &inst, 3).len();
        let mut expected = 0usize;
        for a in inst.rows(RelId(0)) {
            for b in inst.rows(RelId(1)) {
                if a[1] == b[0] {
                    expected += 1;
                }
            }
        }
        prop_assert_eq!(found, expected);
    }

    /// Chase with a full tgd produces only ground tuples; with existential
    /// tgds every null appears introduced by a single firing.
    #[test]
    fn chase_groundness(inst in arb_instance(), tgd in arb_tgd()) {
        let k = chase_one(&inst, &tgd);
        if tgd.is_full() {
            for (_, row) in k.iter_all() {
                prop_assert!(row.iter().all(|v| v.is_const()));
            }
        }
    }

    /// Chase is monotone: growing the source can only grow the output
    /// pattern multiset.
    #[test]
    fn chase_monotone(inst in arb_instance(), extra in arb_instance(), tgd in arb_tgd()) {
        let small = chase_one(&inst, &tgd);
        let mut bigger_src = inst.clone();
        bigger_src.absorb(&extra);
        let big = chase_one(&bigger_src, &tgd);
        let sp = cms_data::pattern_multiset(&small);
        let bp = cms_data::pattern_multiset(&big);
        for (pattern, count) in &sp {
            let have = bp.get(pattern).copied().unwrap_or(0);
            prop_assert!(
                have >= *count,
                "pattern {pattern} lost: {count} -> {have}"
            );
        }
    }

    /// The number of head tuples per firing is bounded by |head| and the
    /// chase of a set equals the union of per-tgd chases up to patterns.
    #[test]
    fn chase_set_is_union_of_parts(inst in arb_instance(), t1 in arb_tgd(), t2 in arb_tgd()) {
        let both = chase(&inst, &[t1.clone(), t2.clone()]);
        let mut union = chase_one(&inst, &t1);
        union.absorb(&chase_one(&inst, &t2));
        let both_ms = cms_data::pattern_multiset(&both);
        let union_ms = cms_data::pattern_multiset(&union);
        let both_keys: Vec<_> = both_ms.keys().collect();
        let union_keys: Vec<_> = union_ms.keys().collect();
        prop_assert_eq!(both_keys, union_keys);
    }

    /// canonical_key is invariant under variable renaming (shift) and atom
    /// order reversal.
    #[test]
    fn canonical_key_invariances(tgd in arb_tgd(), shift in 1u32..7) {
        let rename = |a: &Atom| Atom::new(
            a.rel,
            a.terms
                .iter()
                .map(|t| match t {
                    Term::Var(VarId(v)) => Term::Var(VarId(v + shift)),
                    c => *c,
                })
                .collect(),
        );
        let renamed = StTgd::new(
            tgd.body.iter().rev().map(&rename).collect(),
            tgd.head.iter().rev().map(&rename).collect(),
            vec![],
        );
        prop_assert_eq!(canonical_key(&tgd), canonical_key(&renamed));
    }

    /// Keys distinguish tgds with different relation usage.
    #[test]
    fn canonical_key_separates_relations(tgd in arb_tgd()) {
        // Swap every body relation id 0 ↔ 1; unless the tgd is symmetric
        // in a way that makes them equal, keys usually differ — we only
        // assert the *sound* direction: equal keys ⇒ equal chase patterns
        // on a probe instance.
        let swapped = StTgd::new(
            tgd.body
                .iter()
                .map(|a| Atom::new(RelId(1 - a.rel.0), a.terms.clone()))
                .collect(),
            tgd.head.clone(),
            vec![],
        );
        if canonical_key(&tgd) == canonical_key(&swapped) {
            let mut probe = Instance::new();
            probe.insert_ground(RelId(0), &["p", "q"]);
            probe.insert_ground(RelId(1), &["q", "r"]);
            let a = cms_data::pattern_multiset(&chase_one(&probe, &tgd));
            let b = cms_data::pattern_multiset(&chase_one(&probe, &swapped));
            prop_assert_eq!(a, b);
        }
    }

    /// size() is body + head atom count; existential vars are exactly the
    /// head-only variables.
    #[test]
    fn structural_accessors(tgd in arb_tgd()) {
        prop_assert_eq!(tgd.size(), tgd.body.len() + tgd.head.len());
        let body_vars = tgd.body_vars();
        for v in tgd.existential_vars() {
            prop_assert!(!body_vars.contains(&v));
        }
    }

    /// Chase validation accepts every structurally consistent tgd: head
    /// variables are always classifiable as body-bound or existential, so
    /// plan compilation (the up-front validation pass) never fails for
    /// tgds this crate can express.
    #[test]
    fn fire_plans_compile_for_all_tgds(tgd in arb_tgd()) {
        let plan = FirePlan::new(&tgd).expect("classifiable head");
        prop_assert_eq!(plan.num_existentials(), tgd.existential_vars().len());
        let mut univ: Vec<VarId> = tgd.body_vars().into_iter().collect();
        univ.sort();
        prop_assert_eq!(plan.universals(), &univ[..]);
    }

    /// The batched chase engine is equivalent to the per-tgd naive chase
    /// for every candidate — identical tuple-pattern multisets (null
    /// renaming invariant) — and **bit-identical** to the canonical-order
    /// reference, both per candidate and merged.
    #[test]
    fn engine_equivalent_to_per_tgd_chase(
        inst in arb_instance(),
        tgds in prop::collection::vec(arb_tgd(), 1..6),
    ) {
        let engine = ChaseEngine::new(&tgds).expect("valid candidates");
        let (solutions, stats) = engine.chase_all_stats(&inst);
        prop_assert_eq!(solutions.len(), tgds.len());
        for (k, tgd) in solutions.iter().zip(&tgds) {
            let naive = chase_one(&inst, tgd);
            prop_assert_eq!(
                cms_data::pattern_multiset(k),
                cms_data::pattern_multiset(&naive),
                "per-candidate patterns diverged"
            );
            prop_assert_eq!(k.total_len(), naive.total_len());
            let canonical = chase_one_canonical(&inst, tgd).expect("valid tgd");
            prop_assert_eq!(k.to_tuples(), canonical.to_tuples(), "not bit-identical");
        }
        // Merged solution: bit-identical to the canonical set chase, and
        // pattern-equivalent to the classic match-order chase.
        let merged = engine.chase_merged(&inst);
        let canonical = chase_canonical(&inst, &tgds).expect("valid tgds");
        prop_assert_eq!(merged.to_tuples(), canonical.to_tuples());
        prop_assert_eq!(
            cms_data::pattern_multiset(&merged),
            cms_data::pattern_multiset(&chase(&inst, &tgds))
        );
        // Work accounting: computed + reused covers exactly what the naive
        // per-tgd chases would compute, so reuse never exceeds the naive
        // total and firings appear once per binding.
        prop_assert!(stats.prefix_bindings_computed <= stats.naive_equivalent_bindings());
        prop_assert_eq!(stats.tgds, tgds.len());
    }

    /// Duplicated candidates share the whole body path and fire
    /// independently: solutions of equal candidates are bit-identical.
    #[test]
    fn engine_duplicate_candidates_agree(inst in arb_instance(), tgd in arb_tgd()) {
        let tgds = vec![tgd.clone(), tgd];
        let engine = ChaseEngine::new(&tgds).expect("valid candidates");
        let (solutions, stats) = engine.chase_all_stats(&inst);
        prop_assert_eq!(solutions[0].to_tuples(), solutions[1].to_tuples());
        if stats.prefix_bindings_computed > 0 {
            prop_assert!(
                stats.prefix_bindings_reused >= stats.prefix_bindings_computed,
                "every shared extension serves both duplicates: {stats:?}"
            );
        }
    }
}

/// Validation: chase output conforms to the target schema arities.
#[test]
fn chase_respects_schema_arity() {
    let mut src = Schema::new("s");
    src.add_relation("a", &["x", "y"]);
    let mut tgt = Schema::new("t");
    tgt.add_relation("t", &["x", "y", "z"]);
    let tgd = cms_tgd::parse_tgd("a(x, y) -> t(x, y, k)", &src, &tgt).unwrap();
    let mut i = Instance::new();
    i.insert_ground(RelId(0), &["1", "2"]);
    let k = chase_one(&i, &tgd);
    for (_, row) in k.iter_all() {
        assert_eq!(row.len(), 3);
    }
}

//! Structural normalization and equivalence of tgds.
//!
//! The scenario pipeline needs to recognize the gold mapping `MG` inside the
//! candidate set `C` (the paper's scenarios guarantee `MG ⊆ C`). Candidates
//! and gold tgds are built by different code paths, so variable ids and atom
//! orders differ; equality must be *modulo variable renaming and atom
//! reordering*.
//!
//! [`canonical_key`] computes a canonical string: atoms are sorted by a
//! renaming-invariant key, then variables are renumbered by first
//! occurrence. When several atoms share a sort key, all orderings of the
//! ambiguous group are tried and the lexicographically smallest rendering
//! wins — exact for the tiny tgds we handle (≤ 8 atoms, ambiguity groups of
//! ≤ 3). [`equivalent`] is a convenience comparing canonical keys.

use crate::atom::Atom;
use crate::dependency::StTgd;
use crate::term::{Term, VarId};
use cms_data::FxHashMap;

/// A renaming-invariant per-atom sort key: relation id, arity, constant
/// positions/values, and the intra-atom variable-equality pattern.
fn atom_sort_key(atom: &Atom) -> (u32, usize, Vec<(usize, String)>, Vec<usize>) {
    let consts: Vec<(usize, String)> = atom
        .terms
        .iter()
        .enumerate()
        .filter_map(|(i, t)| match t {
            Term::Const(c) => Some((i, c.as_str().to_owned())),
            Term::Var(_) => None,
        })
        .collect();
    // Intra-atom variable pattern: index of first occurrence of each var.
    let mut first: FxHashMap<VarId, usize> = FxHashMap::default();
    let mut pattern = Vec::new();
    for t in &atom.terms {
        if let Term::Var(v) = t {
            let next = first.len();
            pattern.push(*first.entry(*v).or_insert(next));
        }
    }
    (atom.rel.0, atom.arity(), consts, pattern)
}

/// Render atoms under sequential variable renaming starting from `next`.
fn render(atoms: &[&Atom], map: &mut FxHashMap<VarId, usize>, out: &mut String) {
    for atom in atoms {
        out.push('|');
        out.push_str(&atom.rel.0.to_string());
        out.push('(');
        for (i, t) in atom.terms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            match t {
                Term::Const(c) => {
                    out.push('\'');
                    out.push_str(c.as_str());
                    out.push('\'');
                }
                Term::Var(v) => {
                    let next = map.len();
                    let id = *map.entry(*v).or_insert(next);
                    out.push('v');
                    out.push_str(&id.to_string());
                }
            }
        }
        out.push(')');
    }
}

/// All permutations of a small slice of atom references.
fn permutations<'a>(items: &[&'a Atom]) -> Vec<Vec<&'a Atom>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest: Vec<&Atom> = items.to_vec();
        let head = rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut perm = Vec::with_capacity(items.len());
            perm.push(head);
            perm.append(&mut tail);
            out.push(perm);
        }
    }
    out
}

/// Orderings of `atoms` that respect the sort-key grouping: atoms are sorted
/// by their renaming-invariant key and only atoms sharing a key permute.
/// Groups larger than 4 atoms fall back to the sorted order (never happens
/// for generated candidates; keeps the worst case bounded).
fn grouped_orders(atoms: &[Atom]) -> Vec<Vec<&Atom>> {
    let mut sorted: Vec<&Atom> = atoms.iter().collect();
    sorted.sort_by_key(|a| atom_sort_key(a));
    let mut orders: Vec<Vec<&Atom>> = vec![Vec::new()];
    let mut i = 0;
    while i < sorted.len() {
        let mut j = i + 1;
        while j < sorted.len() && atom_sort_key(sorted[j]) == atom_sort_key(sorted[i]) {
            j += 1;
        }
        let group = &sorted[i..j];
        let group_orders = if group.len() > 4 {
            vec![group.to_vec()]
        } else {
            permutations(group)
        };
        let mut next = Vec::with_capacity(orders.len() * group_orders.len());
        for prefix in &orders {
            for g in &group_orders {
                let mut combined = prefix.clone();
                combined.extend_from_slice(g);
                next.push(combined);
            }
        }
        orders = next;
        i = j;
    }
    orders
}

/// Canonical string of a tgd, invariant under variable renaming and atom
/// reordering.
pub fn canonical_key(tgd: &StTgd) -> String {
    let mut best: Option<String> = None;
    for body_order in grouped_orders(&tgd.body) {
        for head_order in grouped_orders(&tgd.head) {
            let mut map = FxHashMap::default();
            let mut s = String::with_capacity(64);
            s.push('B');
            render(&body_order, &mut map, &mut s);
            s.push_str("=>H");
            render(&head_order, &mut map, &mut s);
            if best.as_ref().is_none_or(|b| s < *b) {
                best = Some(s);
            }
        }
    }
    best.expect("tgd has at least one ordering")
}

/// True iff two tgds are structurally equivalent (same canonical key).
pub fn equivalent(a: &StTgd, b: &StTgd) -> bool {
    canonical_key(a) == canonical_key(b)
}

/// Deduplicate a candidate list, keeping first occurrences; returns the
/// deduped list and, for each input index, the output index it mapped to.
pub fn dedup_tgds(tgds: Vec<StTgd>) -> (Vec<StTgd>, Vec<usize>) {
    let mut keys: FxHashMap<String, usize> = FxHashMap::default();
    let mut out: Vec<StTgd> = Vec::new();
    let mut mapping = Vec::with_capacity(tgds.len());
    for tgd in tgds {
        let key = canonical_key(&tgd);
        match keys.get(&key) {
            Some(&idx) => mapping.push(idx),
            None => {
                let idx = out.len();
                keys.insert(key, idx);
                out.push(tgd);
                mapping.push(idx);
            }
        }
    }
    (out, mapping)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_data::RelId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    #[test]
    fn renaming_invariance() {
        let a = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0), v(1)])],
            vec![Atom::new(RelId(1), vec![v(1), v(2)])],
            vec![],
        );
        let b = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(5), v(3)])],
            vec![Atom::new(RelId(1), vec![v(3), v(9)])],
            vec![],
        );
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn atom_order_invariance() {
        let a = StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0)]),
                Atom::new(RelId(1), vec![v(0), v(1)]),
            ],
            vec![Atom::new(RelId(2), vec![v(1)])],
            vec![],
        );
        let b = StTgd::new(
            vec![
                Atom::new(RelId(1), vec![v(7), v(8)]),
                Atom::new(RelId(0), vec![v(7)]),
            ],
            vec![Atom::new(RelId(2), vec![v(8)])],
            vec![],
        );
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn different_join_structure_distinguished() {
        // R(x) & S(x,y) -> T(y)  vs  R(x) & S(y,x) -> T(y)
        let a = StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0)]),
                Atom::new(RelId(1), vec![v(0), v(1)]),
            ],
            vec![Atom::new(RelId(2), vec![v(1)])],
            vec![],
        );
        let b = StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0)]),
                Atom::new(RelId(1), vec![v(1), v(0)]),
            ],
            vec![Atom::new(RelId(2), vec![v(1)])],
            vec![],
        );
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn ambiguous_groups_are_resolved_exactly() {
        // Two body atoms over the same relation, symmetric up to swap:
        // R(x,y) & R(y,z) -> T(x,z) must equal R(a,b) & R(b,c) -> T(a,c)
        // regardless of atom listing order.
        let a = StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0), v(1)]),
                Atom::new(RelId(0), vec![v(1), v(2)]),
            ],
            vec![Atom::new(RelId(2), vec![v(0), v(2)])],
            vec![],
        );
        let b = StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(1), v(2)]),
                Atom::new(RelId(0), vec![v(0), v(1)]),
            ],
            vec![Atom::new(RelId(2), vec![v(0), v(2)])],
            vec![],
        );
        assert!(equivalent(&a, &b));
    }

    #[test]
    fn constants_distinguish() {
        let a = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0)])],
            vec![Atom::new(RelId(1), vec![v(0), Term::constant("x")])],
            vec![],
        );
        let b = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0)])],
            vec![Atom::new(RelId(1), vec![v(0), Term::constant("y")])],
            vec![],
        );
        assert!(!equivalent(&a, &b));
    }

    #[test]
    fn existential_vs_universal_distinguished() {
        // R(x,y) -> T(x,y)   vs   R(x,y) -> T(x,z): different dependencies.
        let full = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0), v(1)])],
            vec![Atom::new(RelId(1), vec![v(0), v(1)])],
            vec![],
        );
        let exist = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0), v(1)])],
            vec![Atom::new(RelId(1), vec![v(0), v(2)])],
            vec![],
        );
        assert!(!equivalent(&full, &exist));
    }

    #[test]
    fn dedup_keeps_first_and_maps_indices() {
        let a = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0)])],
            vec![Atom::new(RelId(1), vec![v(0)])],
            vec![],
        );
        let b = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(4)])],
            vec![Atom::new(RelId(1), vec![v(4)])],
            vec![],
        );
        let c = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0)])],
            vec![Atom::new(RelId(2), vec![v(0)])],
            vec![],
        );
        let (out, mapping) = dedup_tgds(vec![a, b, c]);
        assert_eq!(out.len(), 2);
        assert_eq!(mapping, vec![0, 0, 1]);
    }
}

//! A programmatic builder for st tgds, used by the candidate and scenario
//! generators (which construct tgds from schema structure, not text).
//!
//! Variables are referenced by name; the builder assigns dense [`VarId`]s in
//! first-use order and records the names for pretty-printing.

use crate::atom::Atom;
use crate::dependency::StTgd;
use crate::term::{Term, VarId};
use cms_data::{FxHashMap, RelId};

/// Fluent builder: add body and head atoms with named variables.
#[derive(Default, Debug)]
pub struct TgdBuilder {
    body: Vec<Atom>,
    head: Vec<Atom>,
    vars: FxHashMap<String, VarId>,
    var_names: Vec<String>,
}

/// One argument in a builder atom: variable (by name) or constant.
#[derive(Clone, Debug)]
pub enum Arg {
    /// A named variable.
    Var(String),
    /// A string constant.
    Const(String),
}

/// Shorthand for [`Arg::Var`].
pub fn var(name: impl Into<String>) -> Arg {
    Arg::Var(name.into())
}

/// Shorthand for [`Arg::Const`].
pub fn cst(value: impl Into<String>) -> Arg {
    Arg::Const(value.into())
}

impl TgdBuilder {
    /// A fresh builder.
    pub fn new() -> TgdBuilder {
        TgdBuilder::default()
    }

    fn term(&mut self, arg: &Arg) -> Term {
        match arg {
            Arg::Const(c) => Term::constant(c),
            Arg::Var(name) => {
                let id = *self.vars.entry(name.clone()).or_insert_with(|| {
                    let id = VarId(self.var_names.len() as u32);
                    self.var_names.push(name.clone());
                    id
                });
                Term::Var(id)
            }
        }
    }

    fn atom(&mut self, rel: RelId, args: &[Arg]) -> Atom {
        let terms = args.iter().map(|a| self.term(a)).collect();
        Atom::new(rel, terms)
    }

    /// Add a body atom (source schema).
    pub fn body(mut self, rel: RelId, args: &[Arg]) -> TgdBuilder {
        let atom = self.atom(rel, args);
        self.body.push(atom);
        self
    }

    /// Add a head atom (target schema).
    pub fn head(mut self, rel: RelId, args: &[Arg]) -> TgdBuilder {
        let atom = self.atom(rel, args);
        self.head.push(atom);
        self
    }

    /// Finish, producing the tgd.
    ///
    /// # Panics
    /// Panics if body or head is empty — builder misuse is a programming
    /// error in the generators.
    pub fn build(self) -> StTgd {
        assert!(!self.body.is_empty(), "tgd builder: empty body");
        assert!(!self.head.is_empty(), "tgd builder: empty head");
        StTgd::new(self.body, self.head, self.var_names)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_theta1() {
        let t = TgdBuilder::new()
            .body(RelId(0), &[var("x"), var("n"), var("c")])
            .body(RelId(1), &[var("c"), var("e")])
            .head(RelId(0), &[var("x"), var("e"), var("o")])
            .build();
        assert_eq!(t.body.len(), 2);
        assert_eq!(t.head.len(), 1);
        assert_eq!(t.existential_vars(), vec![VarId(4)]);
        assert_eq!(t.var_names, vec!["x", "n", "c", "e", "o"]);
    }

    #[test]
    fn shared_names_share_ids() {
        let t = TgdBuilder::new()
            .body(RelId(0), &[var("a"), var("b")])
            .head(RelId(1), &[var("b"), var("a")])
            .build();
        assert!(t.is_full());
        assert_eq!(t.body[0].terms[0], t.head[0].terms[1]);
    }

    #[test]
    fn constants_pass_through() {
        let t = TgdBuilder::new()
            .body(RelId(0), &[var("a")])
            .head(RelId(1), &[var("a"), cst("ACME")])
            .build();
        assert_eq!(t.head[0].terms[1], Term::constant("ACME"));
    }

    #[test]
    #[should_panic(expected = "empty head")]
    fn empty_head_panics() {
        TgdBuilder::new().body(RelId(0), &[var("a")]).build();
    }
}

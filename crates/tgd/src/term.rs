//! Terms of dependencies: variables and constants.

use cms_data::{Sym, Value};
use std::fmt;

/// Dense variable index within one dependency (body and head share one
/// namespace; variables occurring only in the head are existential).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// The id as a usable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A term in an atom: a variable or an interned constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum Term {
    /// A variable.
    Var(VarId),
    /// A constant.
    Const(Sym),
}

impl Term {
    /// Convenience: constant term from a string.
    pub fn constant(s: &str) -> Term {
        Term::Const(Sym::new(s))
    }

    /// The variable id, if a variable.
    pub fn as_var(self) -> Option<VarId> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// Ground this term under a binding (variables looked up by index).
    ///
    /// # Panics
    /// Panics if the term is an unbound variable — callers only ground
    /// fully-bound body matches or head terms after existential assignment.
    pub fn ground(self, binding: &[Option<Value>]) -> Value {
        match self {
            Term::Const(s) => Value::Const(s),
            Term::Var(v) => binding[v.index()].expect("grounding unbound variable"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "?{}", v.0),
            Term::Const(s) => write!(f, "'{s}'"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn as_var() {
        assert_eq!(Term::Var(VarId(3)).as_var(), Some(VarId(3)));
        assert_eq!(Term::constant("a").as_var(), None);
    }

    #[test]
    fn ground_constant_and_variable() {
        let binding = vec![Some(Value::constant("x"))];
        assert_eq!(Term::constant("c").ground(&binding), Value::constant("c"));
        assert_eq!(Term::Var(VarId(0)).ground(&binding), Value::constant("x"));
    }

    #[test]
    #[should_panic(expected = "unbound")]
    fn ground_unbound_panics() {
        Term::Var(VarId(0)).ground(&[None]);
    }

    #[test]
    fn display() {
        assert_eq!(Term::Var(VarId(1)).to_string(), "?1");
        assert_eq!(Term::constant("IBM").to_string(), "'IBM'");
    }
}

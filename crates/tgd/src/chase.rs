//! The oblivious chase: materialize canonical universal solutions.
//!
//! Chasing a source instance `I` with a set `M` of st tgds produces the
//! canonical universal solution `K_M`: for every tgd and every binding of
//! its body over `I`, the head is instantiated with the binding, assigning a
//! *fresh labeled null* to each existential variable (fresh per firing).
//!
//! Because st tgds only ever read the source and write the target, a single
//! pass terminates — no fixpoint is needed. Firings are deduplicated at the
//! tuple level by the set semantics of [`Instance`].
//!
//! ## Validation and firing plans
//!
//! Head instantiation is compiled once per tgd into a [`FirePlan`]: every
//! head position is classified up front as a constant, a body-bound
//! variable slot, or a dense existential slot. Classification is the chase's
//! **validation step** — a malformed tgd is rejected with a structured
//! [`ChaseError`] *before any tuple is emitted*, never by a panic in the
//! middle of a chase (same pattern as the grounding engine's up-front arity
//! validation). The infallible entry points ([`chase`], [`chase_one`],
//! [`chase_into`]) validate first and panic with the rendered error only if
//! handed an invalid tgd; the `try_` variants return it.
//!
//! Firing via a plan also hoists the per-firing existential-null map into a
//! per-tgd scratch buffer indexed by dense existential slot — existentials
//! are a small fixed list per tgd, so no hashing or allocation happens per
//! firing.
//!
//! ## Firing order and null determinism
//!
//! [`chase`]/[`chase_one`] fire bindings in matcher enumeration order (an
//! internal plan order). The `*_canonical` variants instead sort each tgd's
//! bindings by their universal-variable values before firing, making null
//! assignment a pure function of the (source, tgd-list) pair: this is the
//! deterministic firing-order contract the batched
//! [`crate::engine::ChaseEngine`] is bit-identical to. All variants are
//! equivalent up to null renaming.

use crate::dependency::StTgd;
use crate::matcher::{match_conjunction, Binding};
use crate::term::{Term, VarId};
use cms_data::{Instance, NullFactory, RelId, Sym, Tuple, Value};
use std::fmt;

/// Structural chase-validation failures, detected before any firing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ChaseError {
    /// A head variable is neither bound by the body nor listed existential.
    /// Unreachable for tgds whose `body`/`head` agree with the accessors of
    /// [`StTgd`] (existentials are *defined* as the head-minus-body
    /// variables); kept as the structured defense that replaces the old
    /// mid-chase `expect` panic.
    UnboundHeadVar {
        /// Index of the offending atom within the head.
        atom: usize,
        /// Term position within that atom.
        term: usize,
        /// The unclassifiable variable.
        var: VarId,
    },
}

impl fmt::Display for ChaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseError::UnboundHeadVar { atom, term, var } => write!(
                f,
                "head atom {atom}, term {term}: variable ?{} is neither bound by the body nor existential",
                var.0
            ),
        }
    }
}

impl std::error::Error for ChaseError {}

/// One head position of a compiled firing plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Slot {
    /// Emit this constant.
    Const(Sym),
    /// Copy the i-th universal variable's value (index into
    /// [`FirePlan::universals`] order).
    Bound(u32),
    /// Emit the k-th existential null of the firing (dense slot).
    Exist(u32),
}

/// A compiled, validated head-instantiation plan for one tgd.
///
/// Constructed once per tgd ([`FirePlan::new`] is the chase's up-front
/// validation); firing a binding is then a branch-free slot copy with a
/// reusable existential scratch buffer.
#[derive(Clone, Debug)]
pub struct FirePlan {
    /// Universal (body) variables in ascending id order — the order in
    /// which [`FirePlan::fire`] expects its `values`.
    univ: Vec<VarId>,
    /// Per head atom: target relation and compiled slots.
    head: Vec<(RelId, Vec<Slot>)>,
    /// Number of existential variables.
    n_exist: usize,
    /// True iff no two head atoms target the same relation — the batch
    /// firer may then emit atom-major without changing any relation's row
    /// order versus firing-major.
    distinct_head_rels: bool,
    /// Per head atom: (emits an existential null, reads every universal
    /// variable) — the two per-atom distinctness guarantees.
    atom_flags: Vec<(bool, bool)>,
}

impl FirePlan {
    /// Compile and validate the head of `tgd`. Returns
    /// [`ChaseError::UnboundHeadVar`] if any head variable cannot be
    /// classified as body-bound or existential.
    pub fn new(tgd: &StTgd) -> Result<FirePlan, ChaseError> {
        // Dense per-variable slot tables (no hashing; variable namespaces
        // are small).
        let num_vars = tgd.num_vars();
        let mut in_body = vec![false; num_vars];
        for atom in &tgd.body {
            for v in atom.vars() {
                in_body[v.index()] = true;
            }
        }
        let mut univ: Vec<VarId> = Vec::new();
        let mut univ_slot = vec![u32::MAX; num_vars];
        for (i, &b) in in_body.iter().enumerate() {
            if b {
                univ_slot[i] = univ.len() as u32;
                univ.push(VarId(i as u32));
            }
        }
        // Existential slots in first head-occurrence order (matching
        // `StTgd::existential_vars`).
        let mut exist_slot = vec![u32::MAX; num_vars];
        let mut n_exist: u32 = 0;
        for atom in &tgd.head {
            for v in atom.vars() {
                let i = v.index();
                if !in_body[i] && exist_slot[i] == u32::MAX {
                    exist_slot[i] = n_exist;
                    n_exist += 1;
                }
            }
        }

        let mut head = Vec::with_capacity(tgd.head.len());
        for (ai, atom) in tgd.head.iter().enumerate() {
            let mut slots = Vec::with_capacity(atom.terms.len());
            for (ti, t) in atom.terms.iter().enumerate() {
                slots.push(match t {
                    Term::Const(c) => Slot::Const(*c),
                    Term::Var(v) => {
                        let i = v.index();
                        if i < num_vars && univ_slot[i] != u32::MAX {
                            Slot::Bound(univ_slot[i])
                        } else if i < num_vars && exist_slot[i] != u32::MAX {
                            Slot::Exist(exist_slot[i])
                        } else {
                            return Err(ChaseError::UnboundHeadVar {
                                atom: ai,
                                term: ti,
                                var: *v,
                            });
                        }
                    }
                });
            }
            head.push((atom.rel, slots));
        }
        let mut rels: Vec<RelId> = head.iter().map(|(r, _)| *r).collect();
        rels.sort_unstable();
        rels.dedup();
        let distinct_head_rels = rels.len() == head.len();
        let atom_flags = head
            .iter()
            .map(|(_, slots)| {
                let emits_exist = slots.iter().any(|s| matches!(s, Slot::Exist(_)));
                let mut used = vec![false; univ.len()];
                for s in slots {
                    if let Slot::Bound(i) = s {
                        used[*i as usize] = true;
                    }
                }
                (emits_exist, used.iter().all(|&u| u))
            })
            .collect();
        Ok(FirePlan {
            univ,
            head,
            n_exist: n_exist as usize,
            distinct_head_rels,
            atom_flags,
        })
    }

    /// The universal variables, in the ascending-id order `fire` expects
    /// its `values` in.
    pub fn universals(&self) -> &[VarId] {
        &self.univ
    }

    /// Number of existential variables (scratch-buffer size).
    pub fn num_existentials(&self) -> usize {
        self.n_exist
    }

    /// Number of head atoms.
    pub fn num_head_atoms(&self) -> usize {
        self.head.len()
    }

    /// Target relation of head atom `atom`.
    pub fn head_rel(&self, atom: usize) -> RelId {
        self.head[atom].0
    }

    /// True iff no two head atoms write the same relation (then atom-major
    /// emission preserves every relation's firing-major row order).
    pub fn distinct_head_rels(&self) -> bool {
        self.distinct_head_rels
    }

    /// True iff head atom `atom` emits at least one existential null. Such
    /// tuples are pairwise distinct across firings (each firing's nulls
    /// are fresh), the guarantee batch firers use to skip set lookups.
    pub fn atom_emits_existential(&self, atom: usize) -> bool {
        self.atom_flags[atom].0
    }

    /// True iff head atom `atom` reads **every** universal variable: its
    /// tuple then determines the whole firing vector, so distinct firings
    /// emit distinct tuples — the ground-atom analogue of the fresh-null
    /// distinctness guarantee.
    pub fn atom_covers_all_universals(&self, atom: usize) -> bool {
        self.atom_flags[atom].1
    }

    /// Arity of head atom `atom`.
    pub fn head_arity(&self, atom: usize) -> usize {
        self.head[atom].1.len()
    }

    /// Instantiate head atom `atom` for the firing whose existential nulls
    /// start at id `null_base` (existential slot `k` becomes null
    /// `null_base + k` — exactly the ids [`FirePlan::fire`] would draw
    /// from a factory positioned at `null_base`).
    pub fn instantiate(&self, atom: usize, values: &[Value], null_base: u32) -> Vec<Value> {
        let mut out = Vec::with_capacity(self.head_arity(atom));
        self.instantiate_into(atom, values, null_base, &mut out);
        out
    }

    /// [`FirePlan::instantiate`] into a caller-owned buffer (appends; no
    /// allocation) — the flat-emission path of the batch firer.
    pub fn instantiate_into(
        &self,
        atom: usize,
        values: &[Value],
        null_base: u32,
        out: &mut Vec<Value>,
    ) {
        out.extend(self.head[atom].1.iter().map(|s| match s {
            Slot::Const(c) => Value::Const(*c),
            Slot::Bound(i) => values[*i as usize],
            Slot::Exist(k) => Value::Null(cms_data::NullId(null_base + k)),
        }));
    }

    /// Instantiate the head for one firing.
    ///
    /// `values` holds the universal variables' values in
    /// [`FirePlan::universals`] order; `scratch` is a per-tgd buffer reused
    /// across firings (cleared and refilled with this firing's fresh
    /// nulls — no per-firing allocation after the first call). Returns the
    /// number of *new* tuples inserted into `target`.
    pub fn fire(
        &self,
        values: &[Value],
        target: &mut Instance,
        nulls: &mut NullFactory,
        scratch: &mut Vec<Value>,
    ) -> usize {
        scratch.clear();
        scratch.extend((0..self.n_exist).map(|_| Value::Null(nulls.fresh())));
        let mut added = 0;
        for (rel, slots) in &self.head {
            let args: Vec<Value> = slots
                .iter()
                .map(|s| match s {
                    Slot::Const(c) => Value::Const(*c),
                    Slot::Bound(i) => values[*i as usize],
                    Slot::Exist(k) => scratch[*k as usize],
                })
                .collect();
            if target.insert(Tuple::new(*rel, args)) {
                added += 1;
            }
        }
        added
    }

    /// Project one matcher binding onto the universal-variable order,
    /// appending into `values` (cleared first).
    fn project(&self, binding: &Binding, values: &mut Vec<Value>) {
        values.clear();
        values.extend(self.univ.iter().map(|v| {
            binding[v.index()].expect("matcher binds every universal variable of a matched body")
        }));
    }
}

/// Compile plans for a whole candidate set, validating every tgd before
/// any of them fires.
pub fn prepare_plans(tgds: &[StTgd]) -> Result<Vec<FirePlan>, ChaseError> {
    tgds.iter().map(FirePlan::new).collect()
}

/// Chase `source` with a single tgd, appending produced tuples to `target`
/// and drawing nulls from `nulls`. Returns the number of *new* tuples.
pub fn try_chase_into(
    source: &Instance,
    tgd: &StTgd,
    target: &mut Instance,
    nulls: &mut NullFactory,
) -> Result<usize, ChaseError> {
    let plan = FirePlan::new(tgd)?;
    Ok(chase_into_prepared(
        source, tgd, &plan, target, nulls, false,
    ))
}

/// Shared single-tgd driver: enumerate bindings, optionally sort them into
/// canonical order, fire through the plan.
fn chase_into_prepared(
    source: &Instance,
    tgd: &StTgd,
    plan: &FirePlan,
    target: &mut Instance,
    nulls: &mut NullFactory,
    canonical: bool,
) -> usize {
    let bindings = match_conjunction(&tgd.body, source, tgd.num_vars());
    let mut scratch = Vec::with_capacity(plan.num_existentials());
    let mut added = 0;
    if canonical {
        let mut firings: Vec<Vec<Value>> = bindings
            .iter()
            .map(|b| {
                let mut values = Vec::with_capacity(plan.univ.len());
                plan.project(b, &mut values);
                values
            })
            .collect();
        firings.sort_unstable();
        for values in &firings {
            added += plan.fire(values, target, nulls, &mut scratch);
        }
    } else {
        let mut values = Vec::with_capacity(plan.univ.len());
        for binding in &bindings {
            plan.project(binding, &mut values);
            added += plan.fire(&values, target, nulls, &mut scratch);
        }
    }
    added
}

/// Infallible [`try_chase_into`]: panics — up front, before emitting any
/// tuple — if `tgd` fails chase validation.
pub fn chase_into(
    source: &Instance,
    tgd: &StTgd,
    target: &mut Instance,
    nulls: &mut NullFactory,
) -> usize {
    try_chase_into(source, tgd, target, nulls)
        .unwrap_or_else(|e| panic!("chase_into: invalid tgd: {e}"))
}

/// Chase `source` with every tgd in `tgds`, returning the canonical
/// universal solution. Nulls start at id 0. Every tgd is validated before
/// the first one fires.
pub fn try_chase(source: &Instance, tgds: &[StTgd]) -> Result<Instance, ChaseError> {
    let plans = prepare_plans(tgds)?;
    let mut nulls = NullFactory::new();
    let mut target = Instance::new();
    for (tgd, plan) in tgds.iter().zip(&plans) {
        chase_into_prepared(source, tgd, plan, &mut target, &mut nulls, false);
    }
    Ok(target)
}

/// Infallible [`try_chase`]: panics — up front, before emitting any
/// tuple — if any tgd fails chase validation.
pub fn chase(source: &Instance, tgds: &[StTgd]) -> Instance {
    try_chase(source, tgds).unwrap_or_else(|e| panic!("chase: invalid tgd: {e}"))
}

/// Chase with a single tgd (fresh null namespace).
pub fn chase_one(source: &Instance, tgd: &StTgd) -> Instance {
    chase(source, std::slice::from_ref(tgd))
}

/// Fallible [`chase_one`].
pub fn try_chase_one(source: &Instance, tgd: &StTgd) -> Result<Instance, ChaseError> {
    try_chase(source, std::slice::from_ref(tgd))
}

/// [`try_chase`] with the **canonical firing order**: each tgd's bindings
/// are sorted by their universal-variable values before firing, so null
/// assignment (and therefore the exact output instance) is a pure function
/// of `(source, tgds)`. This is the reference the batched
/// [`crate::engine::ChaseEngine`] is bit-identical to.
pub fn chase_canonical(source: &Instance, tgds: &[StTgd]) -> Result<Instance, ChaseError> {
    let plans = prepare_plans(tgds)?;
    let mut nulls = NullFactory::new();
    let mut target = Instance::new();
    for (tgd, plan) in tgds.iter().zip(&plans) {
        chase_into_prepared(source, tgd, plan, &mut target, &mut nulls, true);
    }
    Ok(target)
}

/// Single-tgd [`chase_canonical`] (fresh null namespace), matching one
/// element of [`crate::engine::ChaseEngine::chase_all`] bit for bit.
pub fn chase_one_canonical(source: &Instance, tgd: &StTgd) -> Result<Instance, ChaseError> {
    chase_canonical(source, std::slice::from_ref(tgd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::{Term, VarId};
    use cms_data::RelId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Source: proj(name, code) r0, team(code, emp) r1.
    /// Target: task(pname, emp, oid) r0, org(oid, firm) r1.
    fn source() -> Instance {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["BigData", "7"]);
        inst.insert_ground(RelId(0), &["ML", "9"]);
        inst.insert_ground(RelId(1), &["7", "Bob"]);
        inst.insert_ground(RelId(1), &["9", "Alice"]);
        inst
    }

    /// θ1: proj(X,C) & team(C,E) -> task(X,E,O)   (O existential)
    fn theta1() -> StTgd {
        StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0), v(1)]),
                Atom::new(RelId(1), vec![v(1), v(2)]),
            ],
            vec![Atom::new(RelId(0), vec![v(0), v(2), v(3)])],
            vec![],
        )
    }

    /// θ3: proj(X,C) & team(C,E) -> task(X,E,O) & org(O,F)   (O,F existential)
    fn theta3() -> StTgd {
        StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0), v(1)]),
                Atom::new(RelId(1), vec![v(1), v(2)]),
            ],
            vec![
                Atom::new(RelId(0), vec![v(0), v(2), v(3)]),
                Atom::new(RelId(1), vec![v(3), v(4)]),
            ],
            vec![],
        )
    }

    #[test]
    fn single_tgd_produces_one_tuple_per_binding() {
        let k = chase_one(&source(), &theta1());
        assert_eq!(k.total_len(), 2);
        // Every produced tuple has a null in the third position and the
        // nulls of distinct firings are distinct.
        let rows = k.rows(RelId(0));
        assert_eq!(rows.len(), 2);
        let n0 = rows[0][2].as_null().unwrap();
        let n1 = rows[1][2].as_null().unwrap();
        assert_ne!(n0, n1);
    }

    #[test]
    fn existential_joins_share_nulls_within_firing() {
        let k = chase_one(&source(), &theta3());
        assert_eq!(k.rows(RelId(0)).len(), 2);
        assert_eq!(k.rows(RelId(1)).len(), 2);
        // For each task tuple, the org tuple produced by the same firing
        // shares its null.
        for task in k.rows(RelId(0)) {
            let o = task[2];
            assert!(o.is_null());
            assert!(k.rows(RelId(1)).iter().any(|org| org[0] == o));
        }
    }

    #[test]
    fn full_tgd_produces_ground_tuples_and_dedups() {
        // Full tgd: team(C,E) -> task(C,E,E); chase twice into the same
        // target must not duplicate.
        let full = StTgd::new(
            vec![Atom::new(RelId(1), vec![v(0), v(1)])],
            vec![Atom::new(RelId(0), vec![v(0), v(1), v(1)])],
            vec![],
        );
        let src = source();
        let mut target = Instance::new();
        let mut nulls = NullFactory::new();
        let added = chase_into(&src, &full, &mut target, &mut nulls);
        assert_eq!(added, 2);
        let added_again = chase_into(&src, &full, &mut target, &mut nulls);
        assert_eq!(added_again, 0);
        assert!(target.to_tuples().iter().all(Tuple::is_ground));
    }

    #[test]
    fn chase_set_unions_candidates_with_distinct_nulls() {
        let k = chase(&source(), &[theta1(), theta3()]);
        // θ1 contributes 2 task tuples, θ3 contributes 2 task + 2 org.
        assert_eq!(k.rows(RelId(0)).len(), 4);
        assert_eq!(k.rows(RelId(1)).len(), 2);
        // All nulls distinct across candidates.
        let mut nulls: Vec<_> = k
            .iter_all()
            .flat_map(|(_, row)| row.iter().filter_map(|x| x.as_null()))
            .collect();
        let total = nulls.len();
        nulls.sort();
        nulls.dedup();
        // θ1 firings: 1 null each (2); θ3 firings: 2 nulls each (4); org
        // tuples reuse the task nulls.
        assert_eq!(nulls.len(), 6);
        assert_eq!(total, 8);
    }

    #[test]
    fn constants_in_head_are_emitted() {
        let with_const = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0), v(1)])],
            vec![Atom::new(RelId(1), vec![v(0), Term::constant("ACME")])],
            vec![],
        );
        let k = chase_one(&source(), &with_const);
        assert!(k.contains(
            RelId(1),
            &[Value::constant("BigData"), Value::constant("ACME")]
        ));
    }

    #[test]
    fn empty_source_chases_to_empty() {
        let k = chase_one(&Instance::new(), &theta1());
        assert!(k.is_empty());
    }

    #[test]
    fn universal_solution_homomorphic_into_manual_solution() {
        // Sanity: K_θ1 must map homomorphically into any solution of θ1,
        // e.g. the ground instance where the null is 111/222.
        let k = chase_one(&source(), &theta1());
        let mut j = Instance::new();
        j.insert_ground(RelId(0), &["BigData", "Bob", "111"]);
        j.insert_ground(RelId(0), &["ML", "Alice", "222"]);
        assert!(cms_data::homomorphic(&k, &j));
    }

    #[test]
    fn fire_plan_classifies_every_head_slot() {
        let plan = FirePlan::new(&theta3()).unwrap();
        assert_eq!(plan.universals(), &[VarId(0), VarId(1), VarId(2)]);
        assert_eq!(plan.num_existentials(), 2);
        // Validation happens up front for the whole candidate set.
        assert_eq!(prepare_plans(&[theta1(), theta3()]).unwrap().len(), 2);
    }

    #[test]
    fn chase_error_renders_the_offending_position() {
        let e = ChaseError::UnboundHeadVar {
            atom: 1,
            term: 2,
            var: VarId(7),
        };
        assert_eq!(
            e.to_string(),
            "head atom 1, term 2: variable ?7 is neither bound by the body nor existential"
        );
    }

    #[test]
    fn canonical_chase_is_deterministic_and_renaming_equivalent() {
        let src = source();
        let tgds = [theta1(), theta3()];
        let a = chase_canonical(&src, &tgds).unwrap();
        let b = chase_canonical(&src, &tgds).unwrap();
        assert_eq!(a.to_tuples(), b.to_tuples(), "pure function of inputs");
        // Canonical vs match-order: same patterns, same null-sharing.
        let naive = chase(&src, &tgds);
        assert_eq!(
            cms_data::pattern_multiset(&a),
            cms_data::pattern_multiset(&naive)
        );
        assert!(cms_data::hom_equivalent(&a, &naive));
    }

    #[test]
    fn canonical_firing_order_ignores_source_insertion_order() {
        // The same source built in two insertion orders: the canonical
        // chase must produce bit-identical outputs (same tuples, same row
        // order, same null ids), unlike the match-order chase whose null
        // assignment follows enumeration order.
        let mut fwd = Instance::new();
        fwd.insert_ground(RelId(0), &["ML", "9"]);
        fwd.insert_ground(RelId(0), &["BigData", "7"]);
        fwd.insert_ground(RelId(1), &["7", "Bob"]);
        fwd.insert_ground(RelId(1), &["9", "Alice"]);
        let mut rev = Instance::new();
        rev.insert_ground(RelId(1), &["9", "Alice"]);
        rev.insert_ground(RelId(1), &["7", "Bob"]);
        rev.insert_ground(RelId(0), &["BigData", "7"]);
        rev.insert_ground(RelId(0), &["ML", "9"]);
        let a = chase_one_canonical(&fwd, &theta3()).unwrap();
        let b = chase_one_canonical(&rev, &theta3()).unwrap();
        assert_eq!(a.to_tuples(), b.to_tuples());
    }

    #[test]
    fn empty_body_tgd_fires_exactly_once() {
        // ∅ -> r1(E): one firing, one fresh null — matcher semantics give
        // the empty conjunction a single (empty) binding.
        let t = StTgd::new(vec![], vec![Atom::new(RelId(1), vec![v(0)])], vec![]);
        let k = chase_one(&source(), &t);
        assert_eq!(k.total_len(), 1);
        let canonical = chase_one_canonical(&source(), &t).unwrap();
        assert_eq!(canonical.total_len(), 1);
    }
}

//! The oblivious chase: materialize canonical universal solutions.
//!
//! Chasing a source instance `I` with a set `M` of st tgds produces the
//! canonical universal solution `K_M`: for every tgd and every binding of
//! its body over `I`, the head is instantiated with the binding, assigning a
//! *fresh labeled null* to each existential variable (fresh per firing).
//!
//! Because st tgds only ever read the source and write the target, a single
//! pass terminates — no fixpoint is needed. Firings are deduplicated at the
//! tuple level by the set semantics of [`Instance`].

use crate::dependency::StTgd;
use crate::matcher::{match_conjunction, Binding};
use crate::term::Term;
use cms_data::{FxHashMap, Instance, NullFactory, Tuple, Value};

/// Chase `source` with a single tgd, appending produced tuples to `target`
/// and drawing nulls from `nulls`. Returns the number of *new* tuples.
pub fn chase_into(
    source: &Instance,
    tgd: &StTgd,
    target: &mut Instance,
    nulls: &mut NullFactory,
) -> usize {
    let num_vars = tgd.num_vars();
    let existentials = tgd.existential_vars();
    let bindings = match_conjunction(&tgd.body, source, num_vars);
    let mut added = 0;
    for binding in bindings {
        added += fire(tgd, &binding, &existentials, target, nulls);
    }
    added
}

/// Instantiate the head of `tgd` for one body `binding`.
fn fire(
    tgd: &StTgd,
    binding: &Binding,
    existentials: &[crate::term::VarId],
    target: &mut Instance,
    nulls: &mut NullFactory,
) -> usize {
    // Fresh nulls for this firing's existential variables.
    let mut ext: FxHashMap<u32, Value> = FxHashMap::default();
    for v in existentials {
        ext.insert(v.0, Value::Null(nulls.fresh()));
    }
    let mut added = 0;
    for atom in &tgd.head {
        let args: Vec<Value> = atom
            .terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Value::Const(*c),
                Term::Var(v) => match binding[v.index()] {
                    Some(val) => val,
                    None => *ext
                        .get(&v.0)
                        .expect("head var neither bound nor existential"),
                },
            })
            .collect();
        if target.insert(Tuple::new(atom.rel, args)) {
            added += 1;
        }
    }
    added
}

/// Chase `source` with every tgd in `tgds`, returning the canonical
/// universal solution. Nulls start at id 0.
pub fn chase(source: &Instance, tgds: &[StTgd]) -> Instance {
    let mut nulls = NullFactory::new();
    let mut target = Instance::new();
    for tgd in tgds {
        chase_into(source, tgd, &mut target, &mut nulls);
    }
    target
}

/// Chase with a single tgd (fresh null namespace).
pub fn chase_one(source: &Instance, tgd: &StTgd) -> Instance {
    chase(source, std::slice::from_ref(tgd))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::{Term, VarId};
    use cms_data::RelId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    /// Source: proj(name, code) r0, team(code, emp) r1.
    /// Target: task(pname, emp, oid) r0, org(oid, firm) r1.
    fn source() -> Instance {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["BigData", "7"]);
        inst.insert_ground(RelId(0), &["ML", "9"]);
        inst.insert_ground(RelId(1), &["7", "Bob"]);
        inst.insert_ground(RelId(1), &["9", "Alice"]);
        inst
    }

    /// θ1: proj(X,C) & team(C,E) -> task(X,E,O)   (O existential)
    fn theta1() -> StTgd {
        StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0), v(1)]),
                Atom::new(RelId(1), vec![v(1), v(2)]),
            ],
            vec![Atom::new(RelId(0), vec![v(0), v(2), v(3)])],
            vec![],
        )
    }

    /// θ3: proj(X,C) & team(C,E) -> task(X,E,O) & org(O,F)   (O,F existential)
    fn theta3() -> StTgd {
        StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0), v(1)]),
                Atom::new(RelId(1), vec![v(1), v(2)]),
            ],
            vec![
                Atom::new(RelId(0), vec![v(0), v(2), v(3)]),
                Atom::new(RelId(1), vec![v(3), v(4)]),
            ],
            vec![],
        )
    }

    #[test]
    fn single_tgd_produces_one_tuple_per_binding() {
        let k = chase_one(&source(), &theta1());
        assert_eq!(k.total_len(), 2);
        // Every produced tuple has a null in the third position and the
        // nulls of distinct firings are distinct.
        let rows = k.rows(RelId(0));
        assert_eq!(rows.len(), 2);
        let n0 = rows[0][2].as_null().unwrap();
        let n1 = rows[1][2].as_null().unwrap();
        assert_ne!(n0, n1);
    }

    #[test]
    fn existential_joins_share_nulls_within_firing() {
        let k = chase_one(&source(), &theta3());
        assert_eq!(k.rows(RelId(0)).len(), 2);
        assert_eq!(k.rows(RelId(1)).len(), 2);
        // For each task tuple, the org tuple produced by the same firing
        // shares its null.
        for task in k.rows(RelId(0)) {
            let o = task[2];
            assert!(o.is_null());
            assert!(k.rows(RelId(1)).iter().any(|org| org[0] == o));
        }
    }

    #[test]
    fn full_tgd_produces_ground_tuples_and_dedups() {
        // Full tgd: team(C,E) -> task(C,E,E); chase twice into the same
        // target must not duplicate.
        let full = StTgd::new(
            vec![Atom::new(RelId(1), vec![v(0), v(1)])],
            vec![Atom::new(RelId(0), vec![v(0), v(1), v(1)])],
            vec![],
        );
        let src = source();
        let mut target = Instance::new();
        let mut nulls = NullFactory::new();
        let added = chase_into(&src, &full, &mut target, &mut nulls);
        assert_eq!(added, 2);
        let added_again = chase_into(&src, &full, &mut target, &mut nulls);
        assert_eq!(added_again, 0);
        assert!(target.to_tuples().iter().all(Tuple::is_ground));
    }

    #[test]
    fn chase_set_unions_candidates_with_distinct_nulls() {
        let k = chase(&source(), &[theta1(), theta3()]);
        // θ1 contributes 2 task tuples, θ3 contributes 2 task + 2 org.
        assert_eq!(k.rows(RelId(0)).len(), 4);
        assert_eq!(k.rows(RelId(1)).len(), 2);
        // All nulls distinct across candidates.
        let mut nulls: Vec<_> = k
            .iter_all()
            .flat_map(|(_, row)| row.iter().filter_map(|x| x.as_null()))
            .collect();
        let total = nulls.len();
        nulls.sort();
        nulls.dedup();
        // θ1 firings: 1 null each (2); θ3 firings: 2 nulls each (4); org
        // tuples reuse the task nulls.
        assert_eq!(nulls.len(), 6);
        assert_eq!(total, 8);
    }

    #[test]
    fn constants_in_head_are_emitted() {
        let with_const = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0), v(1)])],
            vec![Atom::new(RelId(1), vec![v(0), Term::constant("ACME")])],
            vec![],
        );
        let k = chase_one(&source(), &with_const);
        assert!(k.contains(
            RelId(1),
            &[Value::constant("BigData"), Value::constant("ACME")]
        ));
    }

    #[test]
    fn empty_source_chases_to_empty() {
        let k = chase_one(&Instance::new(), &theta1());
        assert!(k.is_empty());
    }

    #[test]
    fn universal_solution_homomorphic_into_manual_solution() {
        // Sanity: K_θ1 must map homomorphically into any solution of θ1,
        // e.g. the ground instance where the null is 111/222.
        let k = chase_one(&source(), &theta1());
        let mut j = Instance::new();
        j.insert_ground(RelId(0), &["BigData", "Bob", "111"]);
        j.insert_ground(RelId(0), &["ML", "Alice", "222"]);
        assert!(cms_data::homomorphic(&k, &j));
    }
}

//! Shared body-prefix trie over canonicalized candidate bodies.
//!
//! Candidate generation emits dozens of st tgds whose bodies are identical
//! or near-identical (one body per source logical relation, reused for
//! every target pairing and every conflicting-correspondence alternative).
//! Chasing them one at a time re-joins the same conjunction against the
//! source over and over. The trie removes that duplication structurally:
//!
//! 1. every body is **canonicalized** — atoms greedily reordered into a
//!    deterministic sequence and variables renamed to dense canonical ids
//!    in first-use order ([`canonical_body`]); structurally equal bodies
//!    (up to variable renaming and atom permutation) map to the *same*
//!    canonical sequence, and near-identical bodies share sequence
//!    prefixes;
//! 2. canonical sequences are interned into a prefix trie; each node holds
//!    one canonical atom and the tgds whose body ends there hang off the
//!    node ([`BodyTrie`]).
//!
//! The chase engine (see [`crate::engine`]) then evaluates each trie node's
//! atom **once** per partial binding, no matter how many tgds share the
//! prefix below it.
//!
//! ## Canonical ordering
//!
//! Atom selection is greedy-minimal over provisional canonical forms:
//! at each step the lexicographically smallest remaining atom is picked,
//! where constants order before already-canonicalized (bound) variables and
//! bound variables before fresh ones; ties between structurally identical
//! atoms (self-joins) are resolved by exploring every tied completion and
//! keeping the smallest, so the result is the true lexicographic minimum
//! over all atom orders. This (a) is a pure function of the body's
//! structure, so equal bodies always share paths, and (b) prefers
//! join-connected extensions — an atom reusing bound variables beats one
//! introducing only fresh variables — which keeps trie evaluation from
//! degenerating into cartesian products.

use crate::atom::Atom;
use crate::dependency::StTgd;
use crate::term::Term;
use cms_data::{RelId, Sym};

/// A term of a canonicalized body atom.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum CanonTerm {
    /// A ground constant (orders before variables).
    Const(Sym),
    /// A canonical variable id, dense per body, assigned in first-use order
    /// along the canonical atom sequence.
    Var(u32),
}

/// A body atom with variables renamed to canonical ids.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CanonAtom {
    /// The source relation.
    pub rel: RelId,
    /// Canonicalized argument terms.
    pub terms: Vec<CanonTerm>,
}

/// Canonicalize `body`: returns the canonical atom sequence, the mapping
/// from original variable index to canonical id (`None` for variables not
/// occurring in the body), and the number of canonical variables.
///
/// The result is invariant under variable renaming and atom permutation of
/// `body` — the sequence is the lexicographic minimum over all atom
/// orders: the greedy-minimal pick is exact when unique, and ties (which
/// only occur between structurally identical atoms, e.g. self-joins) are
/// resolved by exploring each tied choice and keeping the smallest full
/// sequence. Distinct tied choices that yield the same minimal sequence
/// are body automorphisms, so the binding sets the engine enumerates are
/// unaffected by which one wins. `num_vars` is the original
/// variable-namespace size (see [`StTgd::num_vars`]).
pub fn canonical_body(body: &[Atom], num_vars: usize) -> (Vec<CanonAtom>, Vec<Option<u32>>, u32) {
    let remaining: Vec<usize> = (0..body.len()).collect();
    let canon_of: Vec<Option<u32>> = vec![None; num_vars];
    canonical_rec(body, remaining, canon_of, 0)
}

/// Provisional canonical form of one atom under the current assignment:
/// fresh variables are numbered from `next` in position order, so they
/// compare after every bound variable (bound ids are all < `next`).
fn provisional(atom: &Atom, canon_of: &[Option<u32>], next: u32) -> CanonAtom {
    let mut fresh: Vec<(u32, u32)> = Vec::new(); // (orig var, provisional id)
    let terms = atom
        .terms
        .iter()
        .map(|t| match t {
            Term::Const(c) => CanonTerm::Const(*c),
            Term::Var(v) => {
                if let Some(id) = canon_of[v.index()] {
                    CanonTerm::Var(id)
                } else if let Some(&(_, id)) = fresh.iter().find(|&&(o, _)| o == v.0) {
                    CanonTerm::Var(id)
                } else {
                    let id = next + fresh.len() as u32;
                    fresh.push((v.0, id));
                    CanonTerm::Var(id)
                }
            }
        })
        .collect();
    CanonAtom {
        rel: atom.rel,
        terms,
    }
}

/// Greedy-minimal canonicalization with exhaustive tie exploration.
/// Iterates in place while the minimal provisional form is unique and
/// recurses only on ties, so the common (tie-free) case stays linear in
/// picks; tied branches are bounded by the factorial of the tie width,
/// and bodies are small.
fn canonical_rec(
    body: &[Atom],
    mut remaining: Vec<usize>,
    mut canon_of: Vec<Option<u32>>,
    mut next: u32,
) -> (Vec<CanonAtom>, Vec<Option<u32>>, u32) {
    let mut out: Vec<CanonAtom> = Vec::with_capacity(remaining.len());
    while !remaining.is_empty() {
        let forms: Vec<CanonAtom> = remaining
            .iter()
            .map(|&ai| provisional(&body[ai], &canon_of, next))
            .collect();
        let min_form = forms.iter().min().expect("non-empty remaining").clone();
        let tied: Vec<usize> = (0..remaining.len())
            .filter(|&s| forms[s] == min_form)
            .collect();
        let commit = |slot: usize,
                      remaining: &[usize],
                      canon_of: &[Option<u32>],
                      next: u32|
         -> (Vec<usize>, Vec<Option<u32>>, u32) {
            let mut rest = remaining.to_vec();
            let ai = rest.remove(slot);
            let mut canon_of = canon_of.to_vec();
            let mut next = next;
            for t in &body[ai].terms {
                if let Term::Var(v) = t {
                    if canon_of[v.index()].is_none() {
                        canon_of[v.index()] = Some(next);
                        next += 1;
                    }
                }
            }
            (rest, canon_of, next)
        };
        if tied.len() == 1 {
            let (rest, c, n) = commit(tied[0], &remaining, &canon_of, next);
            remaining = rest;
            canon_of = c;
            next = n;
            out.push(min_form);
        } else {
            // Structurally identical candidates: the committed fresh-var
            // assignment differs per choice, so explore each and keep the
            // lexicographically smallest completion (first winner on
            // exact ties — an automorphism, see `canonical_body`).
            let mut best: Option<(Vec<CanonAtom>, Vec<Option<u32>>, u32)> = None;
            for &slot in &tied {
                let (rest, c, n) = commit(slot, &remaining, &canon_of, next);
                let cand = canonical_rec(body, rest, c, n);
                if best.as_ref().is_none_or(|b| cand.0 < b.0) {
                    best = Some(cand);
                }
            }
            let (tail, c, n) = best.expect("tied is non-empty");
            out.push(min_form);
            out.extend(tail);
            return (out, c, n);
        }
    }
    (out, canon_of, next)
}

/// One tgd attached to a trie node (its canonical body ends there).
#[derive(Clone, Debug)]
pub struct TgdEntry {
    /// Index of the tgd in the candidate slice the trie was built from.
    pub tgd: usize,
    /// Canonical ids of the tgd's universal variables, listed in ascending
    /// *original* variable-id order — the projection used to extract one
    /// firing vector from a canonical binding (see
    /// [`crate::chase::FirePlan::universals`], which lists the same
    /// variables in the same order).
    pub canon_of_univ: Vec<u32>,
}

/// One node of the body-prefix trie.
#[derive(Clone, Debug)]
pub struct TrieNode {
    /// The canonical atom matched when entering this node.
    pub atom: CanonAtom,
    /// Child node indices, in insertion (candidate) order.
    pub children: Vec<u32>,
    /// Tgds whose canonical body ends at this node.
    pub tgds: Vec<TgdEntry>,
    /// Number of tgds attached at or below this node — how many naive
    /// per-tgd chases would re-evaluate this node's prefix.
    pub subtree_tgds: usize,
    /// True iff some argument can be bound when this node is entered (a
    /// constant, or a variable introduced by an ancestor) — only then is a
    /// column-index probe ever possible; scan-only nodes skip index
    /// acquisition entirely.
    pub probeable: bool,
}

/// A prefix trie over the canonicalized bodies of a candidate set.
#[derive(Clone, Debug, Default)]
pub struct BodyTrie {
    /// All nodes; children always have larger indices than their parent.
    pub nodes: Vec<TrieNode>,
    /// Indices of the depth-1 nodes (first canonical atom of each distinct
    /// body), in insertion order.
    pub roots: Vec<u32>,
    /// Tgds with an empty body (they fire once, unconditionally).
    pub root_tgds: Vec<TgdEntry>,
    /// Total number of tgds interned.
    pub num_tgds: usize,
    /// Size of the shared canonical binding buffer (max canonical variable
    /// count over all bodies).
    pub num_canon_vars: usize,
}

impl BodyTrie {
    /// Intern every tgd body into a fresh trie. Deterministic: the trie
    /// shape and all orders are pure functions of the candidate slice.
    pub fn build(tgds: &[StTgd]) -> BodyTrie {
        let mut trie = BodyTrie {
            num_tgds: tgds.len(),
            ..BodyTrie::default()
        };
        // Candgen emits the same body verbatim for many heads — memoize
        // canonicalization on the exact atom sequence.
        type Canon = (Vec<CanonAtom>, Vec<Option<u32>>, u32);
        let mut memo: cms_data::FxHashMap<&[crate::atom::Atom], Canon> =
            cms_data::FxHashMap::default();
        for (index, tgd) in tgds.iter().enumerate() {
            let num_vars = tgd.num_vars();
            let (atoms, canon_of, n_canon) = memo
                .entry(&tgd.body)
                .or_insert_with(|| canonical_body(&tgd.body, num_vars))
                .clone();
            trie.num_canon_vars = trie.num_canon_vars.max(n_canon as usize);

            // Universal vars in ascending original id order, mapped to
            // their canonical ids. (`canon_of` covers the body's variable
            // range; head-only variables are never universal.)
            let canon_of_univ: Vec<u32> = canon_of.iter().filter_map(|&c| c).collect();
            let entry = TgdEntry {
                tgd: index,
                canon_of_univ,
            };

            // Walk/extend the path for this canonical sequence, tracking
            // how many canonical variables the prefix has introduced so
            // far (shared prefixes agree on this by construction).
            let mut at: Option<usize> = None; // None = virtual root
            let mut bound: u32 = 0;
            for atom in atoms {
                let probeable = atom.terms.iter().any(|t| match t {
                    CanonTerm::Const(_) => true,
                    CanonTerm::Var(v) => *v < bound,
                });
                for t in &atom.terms {
                    if let CanonTerm::Var(v) = t {
                        bound = bound.max(v + 1);
                    }
                }
                let siblings: &[u32] = match at {
                    None => &trie.roots,
                    Some(p) => &trie.nodes[p].children,
                };
                let found = siblings
                    .iter()
                    .find(|&&c| trie.nodes[c as usize].atom == atom)
                    .copied();
                let node = match found {
                    Some(c) => c as usize,
                    None => {
                        let c = trie.nodes.len();
                        trie.nodes.push(TrieNode {
                            atom,
                            children: Vec::new(),
                            tgds: Vec::new(),
                            subtree_tgds: 0,
                            probeable,
                        });
                        match at {
                            None => trie.roots.push(c as u32),
                            Some(p) => trie.nodes[p].children.push(c as u32),
                        }
                        c
                    }
                };
                at = Some(node);
            }
            match at {
                None => trie.root_tgds.push(entry),
                Some(n) => trie.nodes[n].tgds.push(entry),
            }
        }

        // Children always have larger indices than their parents, so one
        // reverse sweep accumulates subtree tgd counts bottom-up.
        for i in (0..trie.nodes.len()).rev() {
            let kids = std::mem::take(&mut trie.nodes[i].children);
            let below: usize = kids
                .iter()
                .map(|&c| trie.nodes[c as usize].subtree_tgds)
                .sum();
            trie.nodes[i].children = kids;
            trie.nodes[i].subtree_tgds = trie.nodes[i].tgds.len() + below;
        }
        trie
    }

    /// Number of trie nodes (excluding the virtual root).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the trie interns no body atoms.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn tgd(body: Vec<Atom>) -> StTgd {
        // Head is irrelevant to the trie; give every tgd the same one.
        StTgd::new(body, vec![Atom::new(RelId(9), vec![v(0)])], vec![])
    }

    #[test]
    fn canonicalization_invariant_under_renaming_and_permutation() {
        let a = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ];
        let b = vec![
            Atom::new(RelId(1), vec![v(7), v(3)]),
            Atom::new(RelId(0), vec![v(5), v(7)]),
        ];
        let (ca, _, na) = canonical_body(&a, 3);
        let (cb, _, nb) = canonical_body(&b, 8);
        assert_eq!(ca, cb);
        assert_eq!(na, nb);
    }

    #[test]
    fn canonicalization_resolves_self_join_ties_order_invariantly() {
        // Two structurally identical r0 atoms tie in provisional form; the
        // tie must be broken by exploring both completions, not by input
        // position, or the two listings below canonicalize differently.
        let a = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(0), vec![v(2), v(3)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ];
        let b = vec![
            Atom::new(RelId(0), vec![v(2), v(3)]),
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ];
        let (ca, _, na) = canonical_body(&a, 4);
        let (cb, _, nb) = canonical_body(&b, 4);
        assert_eq!(ca, cb, "self-join tie must not depend on atom order");
        assert_eq!(na, nb);
        // And the two bodies share one trie path.
        let trie = BodyTrie::build(&[tgd(a), tgd(b)]);
        assert_eq!(trie.roots.len(), 1);
        assert_eq!(trie.len(), 3);
    }

    #[test]
    fn probeable_marks_joinable_nodes_only() {
        // proj(x,c) & team(c,e): the root introduces only fresh variables
        // (scan-only); the join atom reuses c and is probeable. A constant
        // argument makes even a root probeable.
        let join = tgd(vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ]);
        let with_const = tgd(vec![Atom::new(RelId(2), vec![Term::constant("k"), v(0)])]);
        let trie = BodyTrie::build(&[join, with_const]);
        let flags: Vec<(RelId, bool)> = trie
            .nodes
            .iter()
            .map(|n| (n.atom.rel, n.probeable))
            .collect();
        assert!(flags.contains(&(RelId(0), false)), "{flags:?}");
        assert!(flags.contains(&(RelId(1), true)), "{flags:?}");
        assert!(flags.contains(&(RelId(2), true)), "{flags:?}");
    }

    #[test]
    fn identical_bodies_share_one_path() {
        let body = || {
            vec![
                Atom::new(RelId(0), vec![v(0), v(1)]),
                Atom::new(RelId(1), vec![v(1), v(2)]),
            ]
        };
        let tgds = vec![tgd(body()), tgd(body()), tgd(body())];
        let trie = BodyTrie::build(&tgds);
        assert_eq!(trie.len(), 2, "one path of two atoms");
        assert_eq!(trie.roots.len(), 1);
        let leaf = trie
            .nodes
            .iter()
            .find(|n| !n.tgds.is_empty())
            .expect("leaf with tgds");
        assert_eq!(leaf.tgds.len(), 3);
        assert_eq!(trie.nodes[trie.roots[0] as usize].subtree_tgds, 3);
    }

    #[test]
    fn nested_bodies_share_the_common_prefix() {
        let short = tgd(vec![Atom::new(RelId(0), vec![v(0), v(1)])]);
        let long = tgd(vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ]);
        let trie = BodyTrie::build(&[short, long]);
        assert_eq!(trie.len(), 2, "the r0 atom is shared");
        assert_eq!(trie.roots.len(), 1);
        let root = &trie.nodes[trie.roots[0] as usize];
        assert_eq!(root.tgds.len(), 1, "short body ends at the root atom");
        assert_eq!(root.subtree_tgds, 2);
    }

    #[test]
    fn distinct_bodies_get_distinct_branches() {
        let a = tgd(vec![Atom::new(RelId(0), vec![v(0), v(1)])]);
        let b = tgd(vec![Atom::new(RelId(1), vec![v(0), v(1)])]);
        let trie = BodyTrie::build(&[a, b]);
        assert_eq!(trie.roots.len(), 2);
        assert_eq!(trie.len(), 2);
    }

    #[test]
    fn repeated_variable_distinguishes_shapes() {
        let diag = tgd(vec![Atom::new(RelId(0), vec![v(0), v(0)])]);
        let pair = tgd(vec![Atom::new(RelId(0), vec![v(0), v(1)])]);
        let trie = BodyTrie::build(&[diag, pair]);
        assert_eq!(trie.roots.len(), 2, "r0(x,x) and r0(x,y) must not merge");
    }

    #[test]
    fn constants_participate_in_canonical_form() {
        let c1 = tgd(vec![Atom::new(RelId(0), vec![Term::constant("k"), v(0)])]);
        let c2 = tgd(vec![Atom::new(RelId(0), vec![Term::constant("k"), v(4)])]);
        let c3 = tgd(vec![Atom::new(RelId(0), vec![Term::constant("z"), v(0)])]);
        let trie = BodyTrie::build(&[c1, c2, c3]);
        assert_eq!(trie.roots.len(), 2, "same constant shares, distinct splits");
    }

    #[test]
    fn empty_bodies_attach_to_the_virtual_root() {
        let empty = StTgd::new(vec![], vec![Atom::new(RelId(9), vec![v(0)])], vec![]);
        let trie = BodyTrie::build(&[empty]);
        assert!(trie.is_empty());
        assert_eq!(trie.root_tgds.len(), 1);
    }

    #[test]
    fn canonical_ordering_prefers_join_connected_atoms() {
        // r2(x,y) & r0(z,w) & r1(y,z): the canonical order must start from
        // the minimal atom (r0, fresh vars) but then extend through the
        // join graph where possible.
        let body = vec![
            Atom::new(RelId(2), vec![v(0), v(1)]),
            Atom::new(RelId(0), vec![v(2), v(3)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ];
        let (seq, _, n) = canonical_body(&body, 4);
        assert_eq!(n, 4);
        assert_eq!(seq[0].rel, RelId(0));
        // r1 joins on r0's first var; r2 would introduce two fresh vars, so
        // r1 (bound var at position 1) wins the second slot.
        assert_eq!(seq[1].rel, RelId(1));
        assert_eq!(
            seq[1].terms,
            vec![CanonTerm::Var(2), CanonTerm::Var(0)],
            "second atom reuses the bound canonical var 0"
        );
        assert_eq!(seq[2].rel, RelId(2));
    }

    #[test]
    fn universal_projection_lists_vars_in_original_order() {
        // body team(c,e) & proj(x,c): canonical order starts at proj (rel 0).
        let t = tgd(vec![
            Atom::new(RelId(1), vec![v(2), v(3)]),
            Atom::new(RelId(0), vec![v(0), v(2)]),
        ]);
        let trie = BodyTrie::build(std::slice::from_ref(&t));
        let entry = trie
            .nodes
            .iter()
            .flat_map(|n| n.tgds.iter())
            .next()
            .expect("entry");
        // Original var order 0,2,3 → canonical ids of x, c, e.
        // proj(x,c) canonicalizes first: x→0, c→1; then team(c,e): e→2.
        assert_eq!(entry.canon_of_univ, vec![0, 1, 2]);
    }
}

//! A small text syntax for st tgds, used by examples and tests.
//!
//! Grammar (whitespace-insensitive):
//!
//! ```text
//! tgd  := conj "->" conj
//! conj := atom ("&" atom)*
//! atom := ident "(" term ("," term)* ")"
//! term := ident            (a variable)
//!       | "'" chars "'"    (a constant)
//! ```
//!
//! Body relation names resolve against the source schema, head names
//! against the target schema. Variables are shared by name across the whole
//! tgd; head variables not occurring in the body become existential.
//!
//! Example: `proj(x, n, c) & team(c, e) -> task(x, e, o) & org(o, f)`.

use crate::atom::Atom;
use crate::dependency::StTgd;
use crate::term::{Term, VarId};
use cms_data::{FxHashMap, Schema};
use std::fmt;

/// Errors produced by [`parse_tgd`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseError {
    /// The `->` separator is missing or duplicated.
    BadArrow,
    /// General syntax problem, with a human-readable description.
    Syntax(String),
    /// A relation name was not found in the expected schema.
    UnknownRelation {
        /// The unresolved name.
        name: String,
        /// True if it appeared in the body (source side).
        in_body: bool,
    },
    /// An atom's argument count differs from the relation's arity.
    Arity {
        /// The relation name.
        name: String,
        /// Arguments written.
        got: usize,
        /// Arity expected by the schema.
        want: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadArrow => write!(f, "expected exactly one '->'"),
            ParseError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            ParseError::UnknownRelation { name, in_body } => write!(
                f,
                "unknown {} relation {name:?}",
                if *in_body { "source" } else { "target" }
            ),
            ParseError::Arity { name, got, want } => {
                write!(f, "relation {name:?} expects {want} arguments, got {got}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Parse a tgd from text against a schema pair.
pub fn parse_tgd(text: &str, source: &Schema, target: &Schema) -> Result<StTgd, ParseError> {
    let parts: Vec<&str> = text.split("->").collect();
    if parts.len() != 2 {
        return Err(ParseError::BadArrow);
    }
    let mut vars: FxHashMap<String, VarId> = FxHashMap::default();
    let mut var_names: Vec<String> = Vec::new();
    let body = parse_conj(parts[0], source, true, &mut vars, &mut var_names)?;
    let head = parse_conj(parts[1], target, false, &mut vars, &mut var_names)?;
    if body.is_empty() || head.is_empty() {
        return Err(ParseError::Syntax("empty body or head".into()));
    }
    Ok(StTgd::new(body, head, var_names))
}

fn parse_conj(
    text: &str,
    schema: &Schema,
    in_body: bool,
    vars: &mut FxHashMap<String, VarId>,
    var_names: &mut Vec<String>,
) -> Result<Vec<Atom>, ParseError> {
    let mut atoms = Vec::new();
    for raw in split_atoms(text)? {
        let raw = raw.trim();
        if raw.is_empty() {
            continue;
        }
        let open = raw
            .find('(')
            .ok_or_else(|| ParseError::Syntax(format!("missing '(' in {raw:?}")))?;
        if !raw.ends_with(')') {
            return Err(ParseError::Syntax(format!("missing ')' in {raw:?}")));
        }
        let name = raw[..open].trim();
        let rel = schema
            .rel_id(name)
            .ok_or_else(|| ParseError::UnknownRelation {
                name: name.into(),
                in_body,
            })?;
        let args_text = &raw[open + 1..raw.len() - 1];
        let mut terms = Vec::new();
        for arg in args_text.split(',') {
            let arg = arg.trim();
            if arg.is_empty() {
                return Err(ParseError::Syntax(format!("empty argument in {raw:?}")));
            }
            if let Some(stripped) = arg.strip_prefix('\'') {
                let inner = stripped
                    .strip_suffix('\'')
                    .ok_or_else(|| ParseError::Syntax(format!("unterminated constant {arg:?}")))?;
                terms.push(Term::constant(inner));
            } else {
                let id = *vars.entry(arg.to_owned()).or_insert_with(|| {
                    let id = VarId(var_names.len() as u32);
                    var_names.push(arg.to_owned());
                    id
                });
                terms.push(Term::Var(id));
            }
        }
        let want = schema.relation(rel).arity();
        if terms.len() != want {
            return Err(ParseError::Arity {
                name: name.into(),
                got: terms.len(),
                want,
            });
        }
        atoms.push(Atom::new(rel, terms));
    }
    Ok(atoms)
}

/// Split a conjunction on `&` at depth 0 (constants may contain `&`).
fn split_atoms(text: &str) -> Result<Vec<String>, ParseError> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    for ch in text.chars() {
        match ch {
            '\'' => {
                in_quote = !in_quote;
                cur.push(ch);
            }
            '(' if !in_quote => {
                depth += 1;
                cur.push(ch);
            }
            ')' if !in_quote => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| ParseError::Syntax("unbalanced ')'".into()))?;
                cur.push(ch);
            }
            '&' if !in_quote && depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(ch),
        }
    }
    if in_quote {
        return Err(ParseError::Syntax("unterminated quote".into()));
    }
    if depth != 0 {
        return Err(ParseError::Syntax("unbalanced '('".into()));
    }
    out.push(cur);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schemas() -> (Schema, Schema) {
        let mut src = Schema::new("s");
        src.add_relation("proj", &["name", "code", "leader"]);
        src.add_relation("team", &["pcode", "emp"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("task", &["pname", "emp", "org"]);
        tgt.add_relation("org", &["oid", "firm"]);
        (src, tgt)
    }

    #[test]
    fn parses_running_example() {
        let (src, tgt) = schemas();
        let t = parse_tgd(
            "proj(x, n, c) & team(c, e) -> task(x, e, o) & org(o, f)",
            &src,
            &tgt,
        )
        .unwrap();
        assert_eq!(t.body.len(), 2);
        assert_eq!(t.head.len(), 2);
        assert_eq!(t.existential_vars().len(), 2);
        assert_eq!(t.size(), 4);
        // Round-trips through the pretty-printer.
        assert_eq!(
            t.display(&src, &tgt).to_string(),
            "proj(x, n, c) & team(c, e) -> task(x, e, o) & org(o, f)"
        );
    }

    #[test]
    fn constants_are_quoted() {
        let (src, tgt) = schemas();
        let t = parse_tgd("team(c, e) -> org(c, 'IBM')", &src, &tgt).unwrap();
        assert!(t.is_full());
        assert_eq!(t.head[0].terms[1], Term::constant("IBM"));
    }

    #[test]
    fn variables_shared_by_name() {
        let (src, tgt) = schemas();
        let t = parse_tgd("team(c, e) -> task(c, e, e)", &src, &tgt).unwrap();
        assert!(t.is_full());
        assert_eq!(t.head[0].terms[1], t.head[0].terms[2]);
    }

    #[test]
    fn error_cases() {
        let (src, tgt) = schemas();
        assert_eq!(
            parse_tgd("proj(x,y,z)", &src, &tgt),
            Err(ParseError::BadArrow)
        );
        assert!(matches!(
            parse_tgd("nope(x) -> task(x, x, x)", &src, &tgt),
            Err(ParseError::UnknownRelation { in_body: true, .. })
        ));
        assert!(matches!(
            parse_tgd("team(a, b) -> nope(a)", &src, &tgt),
            Err(ParseError::UnknownRelation { in_body: false, .. })
        ));
        assert!(matches!(
            parse_tgd("team(a) -> task(a, a, a)", &src, &tgt),
            Err(ParseError::Arity {
                got: 1,
                want: 2,
                ..
            })
        ));
        assert!(matches!(
            parse_tgd("team(a, b -> task(a, b, b)", &src, &tgt),
            Err(ParseError::Syntax(_))
        ));
        assert!(matches!(
            parse_tgd("team(a, 'b) -> task(a, a, a)", &src, &tgt),
            Err(ParseError::Syntax(_))
        ));
    }

    #[test]
    fn parse_then_validate() {
        let (src, tgt) = schemas();
        let t = parse_tgd("proj(x, n, c) -> task(x, n, c)", &src, &tgt).unwrap();
        assert!(t.validate(&src, &tgt).is_ok());
    }
}

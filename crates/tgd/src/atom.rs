//! Atoms: a relation applied to a vector of terms.

use crate::term::{Term, VarId};
use cms_data::RelId;
use std::fmt;

/// A relational atom `R(t1, ..., tn)` over either the source schema (body
/// position) or the target schema (head position).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    /// The relation (interpreted against the schema the atom's position
    /// implies: body → source, head → target).
    pub rel: RelId,
    /// The argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(rel: RelId, terms: Vec<Term>) -> Atom {
        Atom { rel, terms }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.terms.len()
    }

    /// Variables occurring in this atom, with duplicates, in position order.
    pub fn vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.terms.iter().filter_map(|t| t.as_var())
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}(", self.rel.0)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vars_in_order_with_duplicates() {
        let a = Atom::new(
            RelId(0),
            vec![
                Term::Var(VarId(1)),
                Term::constant("c"),
                Term::Var(VarId(1)),
                Term::Var(VarId(0)),
            ],
        );
        assert_eq!(
            a.vars().collect::<Vec<_>>(),
            vec![VarId(1), VarId(1), VarId(0)]
        );
        assert_eq!(a.arity(), 4);
    }

    #[test]
    fn display() {
        let a = Atom::new(RelId(2), vec![Term::Var(VarId(0)), Term::constant("x")]);
        assert_eq!(a.to_string(), "r2(?0,'x')");
    }
}

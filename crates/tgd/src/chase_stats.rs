//! Work counters for the batched chase engine, mirroring the grounding
//! engine's `GroundStats`.

use std::time::Duration;

/// Statistics of one [`crate::engine::ChaseEngine`] run.
///
/// The headline pair is `prefix_bindings_computed` vs
/// `prefix_bindings_reused`: every successful extension of a partial body
/// binding at a trie node is *computed* once, while a naive per-tgd chase
/// would have recomputed it once per candidate sharing that prefix — the
/// difference is the work the shared body-prefix trie deduplicated.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ChaseStats {
    /// Candidate tgds chased.
    pub tgds: usize,
    /// Body-atom trie nodes (distinct canonical prefixes).
    pub trie_nodes: usize,
    /// Partial-binding extensions actually evaluated (one per successful
    /// atom unification at a trie node).
    pub prefix_bindings_computed: usize,
    /// Extensions a per-tgd chase would have recomputed but the trie
    /// shared: for each computed extension at a node serving `k` candidates,
    /// `k − 1` reuses are counted.
    pub prefix_bindings_reused: usize,
    /// Candidate rows reached through column-index probes (posting-list
    /// walks) during trie evaluation.
    pub candidates_probed: usize,
    /// Candidate rows reached through full relation scans (no bound
    /// argument at that trie node).
    pub candidates_scanned: usize,
    /// Head instantiations (tgd firings).
    pub firings: usize,
    /// New tuples inserted across all produced solutions (set semantics:
    /// duplicate head tuples within one solution don't count).
    pub tuples_emitted: usize,
    /// Wall time of the run (binding enumeration + firing).
    pub wall: Duration,
}

impl ChaseStats {
    /// Accumulate another run's counters into `self`.
    pub fn absorb(&mut self, other: &ChaseStats) {
        self.tgds += other.tgds;
        self.trie_nodes += other.trie_nodes;
        self.prefix_bindings_computed += other.prefix_bindings_computed;
        self.prefix_bindings_reused += other.prefix_bindings_reused;
        self.candidates_probed += other.candidates_probed;
        self.candidates_scanned += other.candidates_scanned;
        self.firings += other.firings;
        self.tuples_emitted += other.tuples_emitted;
        self.wall += other.wall;
    }

    /// Bindings a naive per-tgd chase would have computed for the same
    /// candidate set (`computed + reused`).
    pub fn naive_equivalent_bindings(&self) -> usize {
        self.prefix_bindings_computed + self.prefix_bindings_reused
    }

    /// Mirror this run into the telemetry layer: `chase.*` registry
    /// counters at [`cms_obs::ObsLevel::Stats`] and a typed
    /// [`cms_obs::Event::Chase`] at [`cms_obs::ObsLevel::Journal`].
    /// No-op (one atomic load) when telemetry is off.
    pub fn publish(&self) {
        if cms_obs::enabled(cms_obs::ObsLevel::Stats) {
            let reg = cms_obs::registry();
            reg.counter("chase.runs").inc();
            reg.counter("chase.tgds").add(self.tgds as u64);
            reg.counter("chase.prefix_bindings_computed")
                .add(self.prefix_bindings_computed as u64);
            reg.counter("chase.prefix_bindings_reused")
                .add(self.prefix_bindings_reused as u64);
            reg.counter("chase.candidates_probed")
                .add(self.candidates_probed as u64);
            reg.counter("chase.candidates_scanned")
                .add(self.candidates_scanned as u64);
            reg.counter("chase.firings").add(self.firings as u64);
            reg.counter("chase.tuples_emitted")
                .add(self.tuples_emitted as u64);
        }
        cms_obs::emit(cms_obs::Event::Chase {
            tgds: self.tgds as u64,
            trie_nodes: self.trie_nodes as u64,
            prefix_bindings_computed: self.prefix_bindings_computed as u64,
            prefix_bindings_reused: self.prefix_bindings_reused as u64,
            candidates_probed: self.candidates_probed as u64,
            candidates_scanned: self.candidates_scanned as u64,
            firings: self.firings as u64,
            tuples_emitted: self.tuples_emitted as u64,
            wall_ns: self.wall.as_nanos() as u64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_sums_counters() {
        let mut a = ChaseStats {
            tgds: 1,
            trie_nodes: 2,
            prefix_bindings_computed: 3,
            prefix_bindings_reused: 4,
            candidates_probed: 8,
            candidates_scanned: 9,
            firings: 5,
            tuples_emitted: 6,
            wall: Duration::from_millis(7),
        };
        a.absorb(&a.clone());
        assert_eq!(a.tgds, 2);
        assert_eq!(a.trie_nodes, 4);
        assert_eq!(a.naive_equivalent_bindings(), 14);
        assert_eq!(a.wall, Duration::from_millis(14));
    }
}

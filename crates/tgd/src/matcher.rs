//! Conjunctive-query matching: enumerate all bindings of a tgd body (or any
//! atom conjunction) against an instance.
//!
//! The matcher performs a left-to-right nested-loop join with early
//! unification failure, plus a greedy dynamic atom-ordering heuristic
//! (most-bound-variables-first) that keeps join intermediate sizes small on
//! the FK-shaped bodies the candidate generator produces.

use crate::atom::Atom;
use crate::term::Term;
use cms_data::{Instance, Value};

/// A total or partial assignment of variables to values, indexed by
/// [`crate::term::VarId`].
pub type Binding = Vec<Option<Value>>;

/// Enumerate all bindings of `atoms` (a conjunction) over `inst`.
///
/// `num_vars` is the variable-namespace size (see [`crate::StTgd::num_vars`]);
/// returned bindings bind at least every variable occurring in `atoms`.
/// Bindings are produced in a deterministic order given deterministic
/// instance iteration.
pub fn match_conjunction(atoms: &[Atom], inst: &Instance, num_vars: usize) -> Vec<Binding> {
    let mut results = Vec::new();
    let mut binding: Binding = vec![None; num_vars];
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    search(&mut remaining, inst, &mut binding, &mut results);
    results
}

/// True iff the conjunction has at least one match (early exit).
pub fn has_match(atoms: &[Atom], inst: &Instance, num_vars: usize) -> bool {
    // Reuse the full search but stop after the first result; for the small
    // bodies we handle, the allocation difference is negligible.
    let mut results = Vec::new();
    let mut binding: Binding = vec![None; num_vars];
    let mut remaining: Vec<&Atom> = atoms.iter().collect();
    search_limited(&mut remaining, inst, &mut binding, &mut results, 1);
    !results.is_empty()
}

fn search(remaining: &mut Vec<&Atom>, inst: &Instance, binding: &mut Binding, out: &mut Vec<Binding>) {
    search_limited(remaining, inst, binding, out, usize::MAX);
}

fn search_limited(
    remaining: &mut Vec<&Atom>,
    inst: &Instance,
    binding: &mut Binding,
    out: &mut Vec<Binding>,
    limit: usize,
) {
    if out.len() >= limit {
        return;
    }
    if remaining.is_empty() {
        out.push(binding.clone());
        return;
    }
    // Pick the atom with the most bound terms (constants count as bound):
    // cheap selectivity heuristic.
    let pick = remaining
        .iter()
        .enumerate()
        .max_by_key(|(_, a)| {
            a.terms
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => binding[v.index()].is_some(),
                })
                .count()
        })
        .map(|(i, _)| i)
        .expect("non-empty remaining");
    let atom = remaining.swap_remove(pick);

    for row in inst.rows(atom.rel) {
        let mut bound_here: Vec<usize> = Vec::new();
        if unify_atom(atom, row, binding, &mut bound_here) {
            search_limited(remaining, inst, binding, out, limit);
        }
        for v in bound_here {
            binding[v] = None;
        }
        if out.len() >= limit {
            break;
        }
    }

    // Restore `remaining` exactly (swap_remove moved the last element into
    // `pick`; undo by reinserting).
    remaining.push(atom);
    let last = remaining.len() - 1;
    remaining.swap(pick, last);
}

/// Try to unify one atom against one row under the current binding,
/// recording newly bound variable indices for backtracking.
fn unify_atom(atom: &Atom, row: &[Value], binding: &mut Binding, bound_here: &mut Vec<usize>) -> bool {
    debug_assert_eq!(atom.arity(), row.len(), "schema/instance arity mismatch");
    for (t, v) in atom.terms.iter().zip(row.iter()) {
        match t {
            Term::Const(c) => {
                if Value::Const(*c) != *v {
                    return false;
                }
            }
            Term::Var(var) => match binding[var.index()] {
                Some(bound) => {
                    if bound != *v {
                        return false;
                    }
                }
                None => {
                    binding[var.index()] = Some(*v);
                    bound_here.push(var.index());
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarId;
    use cms_data::RelId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn setup() -> Instance {
        let mut inst = Instance::new();
        // proj(name, code): r0; team(code, emp): r1
        inst.insert_ground(RelId(0), &["BigData", "7"]);
        inst.insert_ground(RelId(0), &["ML", "9"]);
        inst.insert_ground(RelId(1), &["7", "Bob"]);
        inst.insert_ground(RelId(1), &["9", "Alice"]);
        inst.insert_ground(RelId(1), &["9", "Carol"]);
        inst
    }

    #[test]
    fn single_atom_matches_all_rows() {
        let inst = setup();
        let atoms = vec![Atom::new(RelId(0), vec![v(0), v(1)])];
        let res = match_conjunction(&atoms, &inst, 2);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn join_on_shared_variable() {
        let inst = setup();
        // proj(X, C) & team(C, E)
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ];
        let mut res = match_conjunction(&atoms, &inst, 3);
        assert_eq!(res.len(), 3);
        res.sort();
        let names: Vec<String> = res
            .iter()
            .map(|b| format!("{}/{}", b[0].unwrap(), b[2].unwrap()))
            .collect();
        assert!(names.contains(&"BigData/Bob".to_string()));
        assert!(names.contains(&"ML/Alice".to_string()));
        assert!(names.contains(&"ML/Carol".to_string()));
    }

    #[test]
    fn constants_filter() {
        let inst = setup();
        let atoms = vec![Atom::new(RelId(1), vec![v(0), Term::constant("Alice")])];
        let res = match_conjunction(&atoms, &inst, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0][0], Some(Value::constant("9")));
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a", "a"]);
        inst.insert_ground(RelId(0), &["a", "b"]);
        let atoms = vec![Atom::new(RelId(0), vec![v(0), v(0)])];
        let res = match_conjunction(&atoms, &inst, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0][0], Some(Value::constant("a")));
    }

    #[test]
    fn empty_relation_yields_no_matches() {
        let inst = setup();
        let atoms = vec![Atom::new(RelId(5), vec![v(0)])];
        assert!(match_conjunction(&atoms, &inst, 1).is_empty());
        assert!(!has_match(&atoms, &inst, 1));
    }

    #[test]
    fn has_match_finds_first() {
        let inst = setup();
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ];
        assert!(has_match(&atoms, &inst, 3));
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let inst = setup();
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(2), v(3)]),
        ];
        assert_eq!(match_conjunction(&atoms, &inst, 4).len(), 6);
    }

    #[test]
    fn binding_restored_across_branches() {
        // Regression: backtracking must fully unbind variables bound deeper
        // in the search, or later branches see stale bindings.
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["x"]);
        inst.insert_ground(RelId(0), &["y"]);
        inst.insert_ground(RelId(1), &["x"]);
        inst.insert_ground(RelId(1), &["y"]);
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0)]),
            Atom::new(RelId(1), vec![v(1)]),
        ];
        assert_eq!(match_conjunction(&atoms, &inst, 2).len(), 4);
    }
}

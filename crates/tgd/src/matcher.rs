//! Conjunctive-query matching: enumerate all bindings of a tgd body (or any
//! atom conjunction) against an instance.
//!
//! ## Strategy: plan once, probe column indexes
//!
//! The matcher mirrors the PSL grounder's join engine
//! (`cms_psl::grounding`), specialized to [`Instance`]s:
//!
//! 1. **Plan ordering** — the conjunction's atoms are reordered once,
//!    greedily most-selective-first, using each relation's row count and
//!    the per-column distinct-value cardinalities of its lazy
//!    [`ColumnIndex`](cms_data::ColumnIndex): atoms with constant
//!    arguments are estimated by their posting-list length, atoms joining
//!    on an already-bound variable by `rows / distinct`, and unconstrained
//!    atoms by their full row count (penalized to the end).
//! 2. **Probe-vs-scan execution** — at each backtracking node the executor
//!    probes the shortest posting list among the atom's bound argument
//!    positions (constants or variables bound by outer atoms) and iterates
//!    only those rows; a fully unconstrained atom falls back to a scan.
//!
//! Bindings are dense `Vec<Option<Value>>` slots indexed by
//! [`crate::term::VarId`], so unification does no hashing and no
//! allocation per candidate row. Output order is deterministic (plan order
//! is a pure function of the conjunction and the instance shape) but
//! differs from the historical left-to-right nested-loop order; callers
//! must not rely on a specific binding sequence.

use crate::atom::Atom;
use crate::term::Term;
use cms_data::{ColIndexRef, FxHashMap, Instance, RelId, Value};

/// A total or partial assignment of variables to values, indexed by
/// [`crate::term::VarId`].
pub type Binding = Vec<Option<Value>>;

/// Enumerate all bindings of `atoms` (a conjunction) over `inst`.
///
/// `num_vars` is the variable-namespace size (see [`crate::StTgd::num_vars`]);
/// returned bindings bind at least every variable occurring in `atoms`.
pub fn match_conjunction(atoms: &[Atom], inst: &Instance, num_vars: usize) -> Vec<Binding> {
    let mut results = Vec::new();
    enumerate(atoms, inst, num_vars, usize::MAX, &mut results);
    results
}

/// True iff the conjunction has at least one match (early exit).
pub fn has_match(atoms: &[Atom], inst: &Instance, num_vars: usize) -> bool {
    let mut results = Vec::new();
    enumerate(atoms, inst, num_vars, 1, &mut results);
    !results.is_empty()
}

/// Shared driver: plan, acquire indexes, execute.
fn enumerate(
    atoms: &[Atom],
    inst: &Instance,
    num_vars: usize,
    limit: usize,
    out: &mut Vec<Binding>,
) {
    if atoms.is_empty() {
        out.push(vec![None; num_vars]);
        return;
    }
    // One column-index guard per distinct relation in the conjunction.
    let mut rel_slots: FxHashMap<RelId, usize> = FxHashMap::default();
    let mut guards: Vec<Option<ColIndexRef<'_>>> = Vec::new();
    for atom in atoms {
        rel_slots.entry(atom.rel).or_insert_with(|| {
            guards.push(inst.col_index(atom.rel));
            guards.len() - 1
        });
    }
    let order = plan_order(atoms, inst, &rel_slots, &guards);
    let mut binding: Binding = vec![None; num_vars];
    let mut trail: Vec<usize> = Vec::new();
    search(
        &Exec {
            atoms,
            order: &order,
            inst,
            rel_slots: &rel_slots,
            guards: &guards,
            limit,
        },
        0,
        &mut binding,
        &mut trail,
        out,
    );
}

/// Greedy most-selective-first atom ordering.
fn plan_order(
    atoms: &[Atom],
    inst: &Instance,
    rel_slots: &FxHashMap<RelId, usize>,
    guards: &[Option<ColIndexRef<'_>>],
) -> Vec<usize> {
    let mut remaining: Vec<usize> = (0..atoms.len()).collect();
    let mut order: Vec<usize> = Vec::with_capacity(atoms.len());
    let mut bound_vars: Vec<bool> = Vec::new();
    let mark_bound = |atom: &Atom, bound: &mut Vec<bool>| {
        for v in atom.vars() {
            if v.index() >= bound.len() {
                bound.resize(v.index() + 1, false);
            }
            bound[v.index()] = true;
        }
    };
    while !remaining.is_empty() {
        let pick = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &ai)| {
                let atom = &atoms[ai];
                let rows = inst.rows(atom.rel).len();
                let idx = guards[rel_slots[&atom.rel]].as_ref();
                let mut probeable = false;
                let mut est = rows;
                for (col, t) in atom.terms.iter().enumerate() {
                    match t {
                        Term::Const(c) => {
                            probeable = true;
                            if let Some(idx) = idx {
                                est = est.min(idx.postings(col, &Value::Const(*c)).len());
                            }
                        }
                        Term::Var(v) if bound_vars.get(v.index()).copied().unwrap_or(false) => {
                            probeable = true;
                            if let Some(idx) = idx {
                                est = est.min(rows.div_ceil(idx.distinct(col).max(1)));
                            }
                        }
                        Term::Var(_) => {}
                    }
                }
                (usize::from(!probeable), est, ai)
            })
            .map(|(i, _)| i)
            .expect("non-empty remaining");
        let ai = remaining.remove(pick);
        mark_bound(&atoms[ai], &mut bound_vars);
        order.push(ai);
    }
    order
}

/// Shortest posting list among an atom's bound argument positions, or
/// `None` when nothing is bound (the caller falls back to a scan). Shared
/// by this matcher and the trie engine so both pick probes identically;
/// `value_at(col)` reports the column's bound value, if any. Stops early
/// on an empty list — nothing can beat it.
pub(crate) fn shortest_postings<'a>(
    idx: &'a ColIndexRef<'_>,
    arity: usize,
    mut value_at: impl FnMut(usize) -> Option<Value>,
) -> Option<&'a [u32]> {
    let mut best: Option<&[u32]> = None;
    for col in 0..arity {
        if let Some(value) = value_at(col) {
            let postings = idx.postings(col, &value);
            if best.is_none_or(|b: &[u32]| postings.len() < b.len()) {
                best = Some(postings);
                if postings.is_empty() {
                    break;
                }
            }
        }
    }
    best
}

/// Immutable execution context threaded through the recursion.
struct Exec<'a, 'g> {
    atoms: &'a [Atom],
    order: &'a [usize],
    inst: &'a Instance,
    rel_slots: &'a FxHashMap<RelId, usize>,
    guards: &'a [Option<ColIndexRef<'g>>],
    limit: usize,
}

fn search(
    exec: &Exec<'_, '_>,
    depth: usize,
    binding: &mut Binding,
    trail: &mut Vec<usize>,
    out: &mut Vec<Binding>,
) {
    if out.len() >= exec.limit {
        return;
    }
    let Some(&ai) = exec.order.get(depth) else {
        out.push(binding.clone());
        return;
    };
    let atom = &exec.atoms[ai];
    let rows = exec.inst.rows(atom.rel);
    let idx = exec.guards[exec.rel_slots[&atom.rel]].as_ref();

    // Probe: shortest posting list among bound argument positions.
    let best = idx.and_then(|idx| {
        shortest_postings(idx, atom.arity(), |col| match &atom.terms[col] {
            Term::Const(c) => Some(Value::Const(*c)),
            Term::Var(v) => binding[v.index()],
        })
    });

    let visit =
        |row: &[Value], binding: &mut Binding, trail: &mut Vec<usize>, out: &mut Vec<Binding>| {
            let mark = trail.len();
            if unify_atom(atom, row, binding, trail) {
                search(exec, depth + 1, binding, trail, out);
            }
            for &v in &trail[mark..] {
                binding[v] = None;
            }
            trail.truncate(mark);
        };

    match best {
        Some(postings) => {
            for &i in postings {
                visit(&rows[i as usize], binding, trail, out);
                if out.len() >= exec.limit {
                    return;
                }
            }
        }
        None => {
            for row in rows {
                visit(row, binding, trail, out);
                if out.len() >= exec.limit {
                    return;
                }
            }
        }
    }
}

/// Try to unify one atom against one row under the current binding,
/// recording newly bound variable indices for backtracking.
///
/// A row whose arity differs from the atom's never matches. (Historically
/// this was only a `debug_assert`, so in release builds an arity-mismatched
/// row would silently unify against a *prefix* of the atom, leaving
/// trailing variables unbound — the one way a body variable could reach
/// head instantiation unbound and abort the chase mid-run.)
fn unify_atom(
    atom: &Atom,
    row: &[Value],
    binding: &mut Binding,
    bound_here: &mut Vec<usize>,
) -> bool {
    if atom.arity() != row.len() {
        return false;
    }
    for (t, v) in atom.terms.iter().zip(row.iter()) {
        match t {
            Term::Const(c) => {
                if Value::Const(*c) != *v {
                    return false;
                }
            }
            Term::Var(var) => match binding[var.index()] {
                Some(bound) => {
                    if bound != *v {
                        return false;
                    }
                }
                None => {
                    binding[var.index()] = Some(*v);
                    bound_here.push(var.index());
                }
            },
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::VarId;
    use cms_data::RelId;

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn setup() -> Instance {
        let mut inst = Instance::new();
        // proj(name, code): r0; team(code, emp): r1
        inst.insert_ground(RelId(0), &["BigData", "7"]);
        inst.insert_ground(RelId(0), &["ML", "9"]);
        inst.insert_ground(RelId(1), &["7", "Bob"]);
        inst.insert_ground(RelId(1), &["9", "Alice"]);
        inst.insert_ground(RelId(1), &["9", "Carol"]);
        inst
    }

    #[test]
    fn single_atom_matches_all_rows() {
        let inst = setup();
        let atoms = vec![Atom::new(RelId(0), vec![v(0), v(1)])];
        let res = match_conjunction(&atoms, &inst, 2);
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn join_on_shared_variable() {
        let inst = setup();
        // proj(X, C) & team(C, E)
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ];
        let mut res = match_conjunction(&atoms, &inst, 3);
        assert_eq!(res.len(), 3);
        res.sort();
        let names: Vec<String> = res
            .iter()
            .map(|b| format!("{}/{}", b[0].unwrap(), b[2].unwrap()))
            .collect();
        assert!(names.contains(&"BigData/Bob".to_string()));
        assert!(names.contains(&"ML/Alice".to_string()));
        assert!(names.contains(&"ML/Carol".to_string()));
    }

    #[test]
    fn constants_filter() {
        let inst = setup();
        let atoms = vec![Atom::new(RelId(1), vec![v(0), Term::constant("Alice")])];
        let res = match_conjunction(&atoms, &inst, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0][0], Some(Value::constant("9")));
    }

    #[test]
    fn repeated_variable_in_atom() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a", "a"]);
        inst.insert_ground(RelId(0), &["a", "b"]);
        let atoms = vec![Atom::new(RelId(0), vec![v(0), v(0)])];
        let res = match_conjunction(&atoms, &inst, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0][0], Some(Value::constant("a")));
    }

    #[test]
    fn empty_relation_yields_no_matches() {
        let inst = setup();
        let atoms = vec![Atom::new(RelId(5), vec![v(0)])];
        assert!(match_conjunction(&atoms, &inst, 1).is_empty());
        assert!(!has_match(&atoms, &inst, 1));
    }

    #[test]
    fn has_match_finds_first() {
        let inst = setup();
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(1), v(2)]),
        ];
        assert!(has_match(&atoms, &inst, 3));
    }

    #[test]
    fn cartesian_product_when_no_shared_vars() {
        let inst = setup();
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(1), vec![v(2), v(3)]),
        ];
        assert_eq!(match_conjunction(&atoms, &inst, 4).len(), 6);
    }

    #[test]
    fn binding_restored_across_branches() {
        // Regression: backtracking must fully unbind variables bound deeper
        // in the search, or later branches see stale bindings.
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["x"]);
        inst.insert_ground(RelId(0), &["y"]);
        inst.insert_ground(RelId(1), &["x"]);
        inst.insert_ground(RelId(1), &["y"]);
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0)]),
            Atom::new(RelId(1), vec![v(1)]),
        ];
        assert_eq!(match_conjunction(&atoms, &inst, 2).len(), 4);
    }

    #[test]
    fn self_join_on_three_atoms_matches_nested_loop_reference() {
        // Chain join r0(X,Y) & r0(Y,Z) & r0(Z,W) over a small random-ish
        // edge set: the plan executor must agree with a brute-force
        // nested-loop enumeration as a *set*.
        let mut inst = Instance::new();
        let edges = [
            ("a", "b"),
            ("b", "c"),
            ("c", "a"),
            ("a", "c"),
            ("c", "d"),
            ("d", "a"),
            ("b", "d"),
        ];
        for (s, t) in edges {
            inst.insert_ground(RelId(0), &[s, t]);
        }
        let atoms = vec![
            Atom::new(RelId(0), vec![v(0), v(1)]),
            Atom::new(RelId(0), vec![v(1), v(2)]),
            Atom::new(RelId(0), vec![v(2), v(3)]),
        ];
        let mut got = match_conjunction(&atoms, &inst, 4);
        let mut expected = Vec::new();
        for (s1, t1) in edges {
            for (s2, t2) in edges {
                for (s3, t3) in edges {
                    if t1 == s2 && t2 == s3 {
                        expected.push(vec![
                            Some(Value::constant(s1)),
                            Some(Value::constant(s2)),
                            Some(Value::constant(s3)),
                            Some(Value::constant(t3)),
                        ]);
                    }
                }
            }
        }
        got.sort();
        expected.sort();
        assert_eq!(got, expected);
    }

    #[test]
    fn arity_mismatched_rows_never_match() {
        // An instance whose relation holds rows of mixed arity (nothing
        // stops callers): an atom only matches rows of its own arity, it
        // never unifies against a prefix.
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a", "b"]);
        inst.insert_ground(RelId(0), &["a"]);
        let unary = vec![Atom::new(RelId(0), vec![v(0)])];
        let res = match_conjunction(&unary, &inst, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0][0], Some(Value::constant("a")));
        let binary = vec![Atom::new(RelId(0), vec![v(0), v(1)])];
        assert_eq!(match_conjunction(&binary, &inst, 2).len(), 1);
    }

    #[test]
    fn constant_probe_skips_unrelated_rows() {
        // A large relation with one matching constant: the probe must find
        // exactly the matching bindings (behavioral check; the perf effect
        // is covered by benches).
        let mut inst = Instance::new();
        for i in 0..500 {
            inst.insert_ground(RelId(0), &[&format!("k{i}"), "x"]);
        }
        inst.insert_ground(RelId(0), &["needle", "y"]);
        let atoms = vec![Atom::new(RelId(0), vec![Term::constant("needle"), v(0)])];
        let res = match_conjunction(&atoms, &inst, 1);
        assert_eq!(res.len(), 1);
        assert_eq!(res[0][0], Some(Value::constant("y")));
    }
}

//! Batched chase engine: one trie walk for a whole candidate set.
//!
//! [`ChaseEngine`] interns every candidate body into a shared
//! [`BodyTrie`], evaluates each canonical join prefix **once** against the
//! source [`Instance`]'s column indexes, and fires every tgd hanging off a
//! trie node from the shared bindings. For candgen-style candidate sets —
//! dozens of tgds reusing a handful of source join trees — this replaces
//! `O(candidates)` full joins with one walk over the distinct prefixes;
//! [`ChaseStats`] reports exactly how much was shared.
//!
//! ## Firing-order and null-determinism contract
//!
//! Results are equivalent to the naive per-tgd chase up to null renaming,
//! and **bit-identical** to the canonical-order reference:
//!
//! * each tgd's firing vectors (the values of its universal variables, in
//!   ascending original-variable order) are collected during the trie walk
//!   and then **sorted**, so the firing sequence — and therefore the null
//!   assignment — is a pure function of the `(source, candidates)` pair,
//!   independent of trie shape, atom order, or source insertion order;
//! * [`ChaseEngine::chase_all`] gives every candidate its own null
//!   namespace starting at 0 and equals
//!   [`crate::chase::chase_one_canonical`] per candidate, bit for bit;
//! * [`ChaseEngine::chase_merged`] threads one [`NullFactory`] through the
//!   candidates in slice order and equals
//!   [`crate::chase::chase_canonical`] bit for bit (and the classic
//!   [`crate::chase::chase`] up to null renaming).
//!
//! Malformed tgds are rejected by [`ChaseEngine::new`] with a structured
//! [`ChaseError`] before anything fires.

use crate::chase::{prepare_plans, ChaseError, FirePlan};
use crate::chase_stats::ChaseStats;
use crate::dependency::StTgd;
use crate::trie::{BodyTrie, CanonAtom, CanonTerm, TrieNode};
use cms_data::{ColIndexRef, FxHashMap, Instance, NullFactory, RelId, Rows, Tuple, Value};
use std::time::Instant;

/// A compiled batch chaser for a fixed candidate set.
///
/// Construction canonicalizes and interns every body into the shared
/// prefix trie and validates every head ([`FirePlan`]); the engine can then
/// be run against any number of source instances.
#[derive(Clone, Debug)]
pub struct ChaseEngine {
    trie: BodyTrie,
    plans: Vec<FirePlan>,
}

impl ChaseEngine {
    /// Compile an engine for `tgds`. Validates every tgd up front.
    pub fn new(tgds: &[StTgd]) -> Result<ChaseEngine, ChaseError> {
        let plans = prepare_plans(tgds)?;
        Ok(ChaseEngine {
            trie: BodyTrie::build(tgds),
            plans,
        })
    }

    /// Number of candidate tgds the engine was compiled for.
    pub fn num_tgds(&self) -> usize {
        self.plans.len()
    }

    /// The shared body-prefix trie (for diagnostics).
    pub fn trie(&self) -> &BodyTrie {
        &self.trie
    }

    /// Chase `source` with every candidate, returning one canonical
    /// universal solution per candidate (each with its own null namespace
    /// starting at 0) — the batched equivalent of mapping
    /// [`crate::chase::chase_one`] over the candidates, bit-identical to
    /// [`crate::chase::chase_one_canonical`].
    pub fn chase_all(&self, source: &Instance) -> Vec<Instance> {
        self.chase_all_stats(source).0
    }

    /// [`ChaseEngine::chase_all`] plus this run's [`ChaseStats`].
    pub fn chase_all_stats(&self, source: &Instance) -> (Vec<Instance>, ChaseStats) {
        let _span = cms_obs::span("chase/all");
        let start = Instant::now();
        let mut stats = self.fresh_stats();
        let firings = self.collect_firings(source, &mut stats);
        let mut out = Vec::with_capacity(self.plans.len());
        let mut buf = Vec::new();
        for (plan, per_tgd) in self.plans.iter().zip(&firings) {
            let mut target = Instance::new();
            let mut nulls = NullFactory::new();
            fire_tgd(plan, per_tgd, &mut target, &mut nulls, &mut stats, &mut buf);
            out.push(target);
        }
        stats.wall = start.elapsed();
        stats.publish();
        (out, stats)
    }

    /// Chase `source` with every candidate into **one** merged instance,
    /// sharing a single null factory across candidates in slice order —
    /// the batched equivalent of [`crate::chase::chase`], bit-identical to
    /// [`crate::chase::chase_canonical`].
    pub fn chase_merged(&self, source: &Instance) -> Instance {
        self.chase_merged_stats(source).0
    }

    /// [`ChaseEngine::chase_merged`] plus this run's [`ChaseStats`].
    pub fn chase_merged_stats(&self, source: &Instance) -> (Instance, ChaseStats) {
        let _span = cms_obs::span("chase/merged");
        let start = Instant::now();
        let mut stats = self.fresh_stats();
        let firings = self.collect_firings(source, &mut stats);
        let mut target = Instance::new();
        let mut nulls = NullFactory::new();
        let mut buf = Vec::new();
        for (plan, per_tgd) in self.plans.iter().zip(&firings) {
            fire_tgd(plan, per_tgd, &mut target, &mut nulls, &mut stats, &mut buf);
        }
        stats.wall = start.elapsed();
        stats.publish();
        (target, stats)
    }

    fn fresh_stats(&self) -> ChaseStats {
        ChaseStats {
            tgds: self.plans.len(),
            trie_nodes: self.trie.len(),
            ..ChaseStats::default()
        }
    }

    /// One trie walk: per tgd, the firing vectors (universal variable
    /// values in ascending original-variable order) in a flat buffer with
    /// a canonical (sorted) visit order.
    fn collect_firings(&self, source: &Instance, stats: &mut ChaseStats) -> Vec<TgdFirings> {
        let mut firings: Vec<TgdFirings> = self
            .plans
            .iter()
            .map(|p| TgdFirings::new(p.universals().len()))
            .collect();
        // Empty-body tgds fire once, unconditionally (the empty conjunction
        // has exactly one binding).
        for entry in &self.trie.root_tgds {
            firings[entry.tgd].count += 1;
        }
        if !self.trie.is_empty() {
            // One column-index guard per distinct relation with at least
            // one probeable node, resolved to per-node slot and row-slice
            // tables up front — the walk itself never hashes, and
            // scan-only relations never pay an index build.
            let mut rel_slots: FxHashMap<RelId, usize> = FxHashMap::default();
            let mut guards: Vec<Option<ColIndexRef<'_>>> = Vec::new();
            let node_slots: Vec<usize> = self
                .trie
                .nodes
                .iter()
                .map(|node| {
                    if !node.probeable {
                        return usize::MAX;
                    }
                    *rel_slots.entry(node.atom.rel).or_insert_with(|| {
                        guards.push(source.col_index(node.atom.rel));
                        guards.len() - 1
                    })
                })
                .collect();
            let node_rows: Vec<Rows<'_>> = self
                .trie
                .nodes
                .iter()
                .map(|node| source.rows(node.atom.rel))
                .collect();
            let eval = Eval {
                trie: &self.trie,
                node_slots: &node_slots,
                node_rows: &node_rows,
                guards: &guards,
            };
            let mut binding: Vec<Option<Value>> = vec![None; self.trie.num_canon_vars];
            let mut trail: Vec<usize> = Vec::new();
            for &root in &self.trie.roots {
                eval.node(root as usize, &mut binding, &mut trail, &mut firings, stats);
            }
        }
        // Canonical firing order (see the module docs): deterministic and
        // shared with `chase_canonical`/`chase_one_canonical`.
        for per_tgd in &mut firings {
            per_tgd.sort();
        }
        firings
    }
}

/// All firings of one tgd: `count` vectors of `stride` values each, stored
/// flat. After [`TgdFirings::sort`], the flat buffer holds the vectors in
/// canonical (sorted) order.
struct TgdFirings {
    stride: usize,
    count: usize,
    flat: Vec<Value>,
}

impl TgdFirings {
    fn new(stride: usize) -> TgdFirings {
        TgdFirings {
            stride,
            count: 0,
            flat: Vec::new(),
        }
    }

    /// Rearrange the flat buffer into canonical (value-sorted) firing
    /// order. Stride-0 firings are all identical, so any order is
    /// canonical.
    ///
    /// Values are compared through an order-preserving `u64` encoding
    /// (variant tag then id — exactly [`Value`]'s derived `Ord`), packed
    /// into one `u128` key per firing when the stride allows.
    fn sort(&mut self) {
        if self.stride == 0 || self.count < 2 {
            return;
        }
        let encode = |v: &Value| -> u64 {
            match v {
                Value::Const(s) => s.raw() as u64,
                Value::Null(n) => (1u64 << 32) | n.0 as u64,
            }
        };
        let mut order: Vec<u32> = (0..self.count as u32).collect();
        if self.stride <= 2 {
            let keys: Vec<u128> = self
                .flat
                .chunks(self.stride)
                .map(|chunk| {
                    chunk
                        .iter()
                        .fold(0u128, |acc, v| (acc << 64) | encode(v) as u128)
                })
                .collect();
            order.sort_unstable_by_key(|&i| keys[i as usize]);
        } else {
            // Composite key: the first two values pack into a u128 that
            // decides almost every comparison; ties fall back to the tail.
            let stride = self.stride;
            let heads: Vec<u128> = self
                .flat
                .chunks(stride)
                .map(|chunk| ((encode(&chunk[0]) as u128) << 64) | encode(&chunk[1]) as u128)
                .collect();
            let keys: Vec<u64> = self.flat.iter().map(encode).collect();
            order.sort_unstable_by(|&a, &b| {
                heads[a as usize].cmp(&heads[b as usize]).then_with(|| {
                    keys[a as usize * stride + 2..(a as usize + 1) * stride]
                        .cmp(&keys[b as usize * stride + 2..(b as usize + 1) * stride])
                })
            });
        }
        if order.iter().enumerate().any(|(i, &o)| o != i as u32) {
            let mut sorted = Vec::with_capacity(self.flat.len());
            for &i in &order {
                let f = i as usize * self.stride;
                sorted.extend_from_slice(&self.flat[f..f + self.stride]);
            }
            self.flat = sorted;
        }
    }

    /// The `i`-th firing vector in canonical order (call after `sort`).
    fn values(&self, i: usize) -> &[Value] {
        &self.flat[i * self.stride..(i + 1) * self.stride]
    }
}

/// Fire every collected firing of one tgd into `target`.
///
/// Null ids are assigned arithmetically — firing `j` (canonical order)
/// owns ids `base + j·n_exist ..`, matching exactly what
/// [`FirePlan::fire`] would draw from the factory firing-major — so the
/// output is bit-identical to the canonical naive chase. When every head
/// atom writes a distinct relation, emission is atom-major into a flat
/// scratch buffer: head atoms whose tuples are distinct by construction
/// (fresh nulls, or reading every universal variable into an empty
/// relation) bulk-append without any set lookups
/// ([`Instance::extend_distinct`]); other all-bound atoms into an empty
/// relation dedup with an index sort first; everything else goes through
/// normal deduplicating inserts.
fn fire_tgd(
    plan: &FirePlan,
    firings: &TgdFirings,
    target: &mut Instance,
    nulls: &mut NullFactory,
    stats: &mut ChaseStats,
    buf: &mut Vec<Value>,
) {
    let n_exist = plan.num_existentials() as u32;
    // Widen before multiplying: a wrapped u32 product would hand out
    // colliding null ids where the naive chase's checked factory panics.
    let block = u32::try_from(firings.count as u64 * n_exist as u64).expect("null id overflow");
    let base = nulls.reserve(block);
    stats.firings += firings.count;
    if plan.distinct_head_rels() {
        for atom in 0..plan.num_head_atoms() {
            let rel = plan.head_rel(atom);
            let arity = plan.head_arity(atom);
            // Fresh-null tuples are distinct across firings everywhere;
            // all-universal ground tuples are distinct across firings but
            // could collide with rows another tgd already emitted, so they
            // additionally need an empty relation.
            let dup_free = (n_exist > 0 && plan.atom_emits_existential(atom))
                || (plan.atom_covers_all_universals(atom) && target.rows(rel).is_empty());
            if arity > 0 && dup_free {
                buf.clear();
                for j in 0..firings.count {
                    plan.instantiate_into(atom, firings.values(j), base + j as u32 * n_exist, buf);
                }
                stats.tuples_emitted += firings.count;
                target.extend_distinct(rel, arity, buf);
            } else if arity > 0 && target.rows(rel).is_empty() {
                // All-bound atom into an empty relation: duplicates can
                // only come from this atom's own firings, so dedup with an
                // index sort (first occurrence wins, order preserved) and
                // bulk-append — no hashing, no clones.
                buf.clear();
                for j in 0..firings.count {
                    plan.instantiate_into(atom, firings.values(j), base, buf);
                }
                let row = |i: u32| &buf[i as usize * arity..(i as usize + 1) * arity];
                let mut order: Vec<u32> = (0..firings.count as u32).collect();
                order.sort_unstable_by(|&a, &b| row(a).cmp(row(b)).then(a.cmp(&b)));
                let mut dup = vec![false; firings.count];
                let mut any_dup = false;
                for w in order.windows(2) {
                    if row(w[0]) == row(w[1]) {
                        dup[w[1] as usize] = true;
                        any_dup = true;
                    }
                }
                let kept = if any_dup {
                    // Compact in place, preserving first-occurrence order.
                    let mut w = 0usize;
                    for (j, &d) in dup.iter().enumerate() {
                        if !d {
                            buf.copy_within(j * arity..(j + 1) * arity, w * arity);
                            w += 1;
                        }
                    }
                    w
                } else {
                    firings.count
                };
                stats.tuples_emitted += kept;
                target.extend_distinct(rel, arity, &buf[..kept * arity]);
            } else {
                for j in 0..firings.count {
                    let args = plan.instantiate(atom, firings.values(j), base);
                    if target.insert(Tuple::new(rel, args)) {
                        stats.tuples_emitted += 1;
                    }
                }
            }
        }
    } else {
        // A relation repeats in the head: firing-major emission keeps the
        // per-relation row order of the naive reference, and inserts
        // dedup (identical sibling atoms collide every firing).
        for j in 0..firings.count {
            let null_base = base + j as u32 * n_exist;
            for atom in 0..plan.num_head_atoms() {
                let args = plan.instantiate(atom, firings.values(j), null_base);
                if target.insert(Tuple::new(plan.head_rel(atom), args)) {
                    stats.tuples_emitted += 1;
                }
            }
        }
    }
}

/// Immutable trie-walk context.
struct Eval<'a> {
    trie: &'a BodyTrie,
    /// Node index → guard slot (pre-resolved, no hashing in the walk).
    node_slots: &'a [usize],
    /// Node index → the relation's rows (pre-resolved).
    node_rows: &'a [Rows<'a>],
    guards: &'a [Option<ColIndexRef<'a>>],
}

impl Eval<'_> {
    /// Extend the shared partial binding through one trie node: probe the
    /// shortest posting list among the atom's bound argument positions
    /// (falling back to a scan when nothing is bound), record a firing for
    /// every tgd attached here, and recurse into the children.
    fn node(
        &self,
        idx: usize,
        binding: &mut [Option<Value>],
        trail: &mut Vec<usize>,
        firings: &mut [TgdFirings],
        stats: &mut ChaseStats,
    ) {
        let node = &self.trie.nodes[idx];
        let rows = self.node_rows[idx];
        let guard = if node.probeable {
            self.guards[self.node_slots[idx]].as_ref()
        } else {
            None
        };

        // Probe: shortest posting list among bound argument positions
        // (same selection rule as the per-tgd matcher).
        let best = guard.and_then(|guard| {
            crate::matcher::shortest_postings(guard, node.atom.terms.len(), |col| {
                match &node.atom.terms[col] {
                    CanonTerm::Const(c) => Some(Value::Const(*c)),
                    CanonTerm::Var(v) => binding[*v as usize],
                }
            })
        });

        match best {
            Some(postings) => {
                stats.candidates_probed += postings.len();
                for &i in postings {
                    self.visit(node, &rows[i as usize], binding, trail, firings, stats);
                }
            }
            None => {
                stats.candidates_scanned += rows.len();
                for row in rows {
                    self.visit(node, row, binding, trail, firings, stats);
                }
            }
        }
    }

    fn visit(
        &self,
        node: &TrieNode,
        row: &[Value],
        binding: &mut [Option<Value>],
        trail: &mut Vec<usize>,
        firings: &mut [TgdFirings],
        stats: &mut ChaseStats,
    ) {
        let mark = trail.len();
        if unify_canon(&node.atom, row, binding, trail) {
            stats.prefix_bindings_computed += 1;
            // A naive per-tgd chase recomputes this extension once per
            // candidate at or below this node.
            stats.prefix_bindings_reused += node.subtree_tgds - 1;
            for entry in &node.tgds {
                let per_tgd = &mut firings[entry.tgd];
                per_tgd.count += 1;
                per_tgd.flat.extend(entry.canon_of_univ.iter().map(|&c| {
                    binding[c as usize].expect("every canonical variable on the path is bound")
                }));
            }
            for &child in &node.children {
                self.node(child as usize, binding, trail, firings, stats);
            }
        }
        for &slot in &trail[mark..] {
            binding[slot] = None;
        }
        trail.truncate(mark);
    }
}

/// Unify one canonical atom against one row under the current binding,
/// recording newly bound canonical-variable slots for backtracking. Rows
/// whose arity differs from the atom's never match.
fn unify_canon(
    atom: &CanonAtom,
    row: &[Value],
    binding: &mut [Option<Value>],
    bound_here: &mut Vec<usize>,
) -> bool {
    if atom.terms.len() != row.len() {
        return false;
    }
    for (t, v) in atom.terms.iter().zip(row.iter()) {
        match t {
            CanonTerm::Const(c) => {
                if Value::Const(*c) != *v {
                    return false;
                }
            }
            CanonTerm::Var(id) => {
                let slot = *id as usize;
                match binding[slot] {
                    Some(bound) => {
                        if bound != *v {
                            return false;
                        }
                    }
                    None => {
                        binding[slot] = Some(*v);
                        bound_here.push(slot);
                    }
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::chase::{chase, chase_canonical, chase_one, chase_one_canonical};
    use crate::term::{Term, VarId};
    use cms_data::{hom_equivalent, pattern_multiset, RelId};

    fn v(i: u32) -> Term {
        Term::Var(VarId(i))
    }

    fn source() -> Instance {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["BigData", "7"]);
        inst.insert_ground(RelId(0), &["ML", "9"]);
        inst.insert_ground(RelId(1), &["7", "Bob"]);
        inst.insert_ground(RelId(1), &["9", "Alice"]);
        inst
    }

    /// θ1 and θ3 of the running example: identical bodies, different heads.
    fn theta1() -> StTgd {
        StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0), v(1)]),
                Atom::new(RelId(1), vec![v(1), v(2)]),
            ],
            vec![Atom::new(RelId(0), vec![v(0), v(2), v(3)])],
            vec![],
        )
    }

    fn theta3() -> StTgd {
        StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0), v(1)]),
                Atom::new(RelId(1), vec![v(1), v(2)]),
            ],
            vec![
                Atom::new(RelId(0), vec![v(0), v(2), v(3)]),
                Atom::new(RelId(1), vec![v(3), v(4)]),
            ],
            vec![],
        )
    }

    #[test]
    fn shared_bodies_are_joined_once() {
        let tgds = [theta1(), theta3()];
        let engine = ChaseEngine::new(&tgds).unwrap();
        let (solutions, stats) = engine.chase_all_stats(&source());
        assert_eq!(solutions.len(), 2);
        assert_eq!(stats.trie_nodes, 2, "one shared two-atom path");
        // 2 root-atom extensions + 2 join extensions, each serving both
        // tgds: computed once, reused once.
        assert_eq!(stats.prefix_bindings_computed, 4);
        assert_eq!(stats.prefix_bindings_reused, 4);
        assert_eq!(stats.firings, 4);
        assert_eq!(stats.tuples_emitted, 2 + 4);
    }

    #[test]
    fn chase_all_matches_per_tgd_chase() {
        let tgds = [theta1(), theta3()];
        let engine = ChaseEngine::new(&tgds).unwrap();
        let solutions = engine.chase_all(&source());
        for (k, tgd) in solutions.iter().zip(&tgds) {
            let naive = chase_one(&source(), tgd);
            assert_eq!(pattern_multiset(k), pattern_multiset(&naive));
            assert!(hom_equivalent(k, &naive));
            let canonical = chase_one_canonical(&source(), tgd).unwrap();
            assert_eq!(k.to_tuples(), canonical.to_tuples(), "bit-identical");
        }
    }

    #[test]
    fn chase_merged_matches_set_chase() {
        let tgds = [theta1(), theta3()];
        let engine = ChaseEngine::new(&tgds).unwrap();
        let merged = engine.chase_merged(&source());
        let canonical = chase_canonical(&source(), &tgds).unwrap();
        assert_eq!(merged.to_tuples(), canonical.to_tuples(), "bit-identical");
        let naive = chase(&source(), &tgds);
        assert_eq!(pattern_multiset(&merged), pattern_multiset(&naive));
        assert!(hom_equivalent(&merged, &naive));
    }

    #[test]
    fn divergent_bodies_still_agree_with_naive() {
        // A third candidate with a different (single-atom) body: partial
        // prefix sharing plus an independent branch.
        let flat = StTgd::new(
            vec![Atom::new(RelId(1), vec![v(0), v(1)])],
            vec![Atom::new(RelId(1), vec![v(1), v(0)])],
            vec![],
        );
        let tgds = [theta1(), flat.clone(), theta3()];
        let engine = ChaseEngine::new(&tgds).unwrap();
        let solutions = engine.chase_all(&source());
        for (k, tgd) in solutions.iter().zip(&tgds) {
            assert_eq!(
                k.to_tuples(),
                chase_one_canonical(&source(), tgd).unwrap().to_tuples()
            );
        }
    }

    #[test]
    fn empty_candidate_set_and_empty_source() {
        let engine = ChaseEngine::new(&[]).unwrap();
        assert!(engine.chase_all(&source()).is_empty());
        assert!(engine.chase_merged(&source()).is_empty());

        let tgds = [theta1()];
        let engine = ChaseEngine::new(&tgds).unwrap();
        let (solutions, stats) = engine.chase_all_stats(&Instance::new());
        assert!(solutions[0].is_empty());
        assert_eq!(stats.firings, 0);
    }

    #[test]
    fn empty_body_candidates_fire_once() {
        let unconditional = StTgd::new(vec![], vec![Atom::new(RelId(2), vec![v(0)])], vec![]);
        let engine = ChaseEngine::new(std::slice::from_ref(&unconditional)).unwrap();
        let solutions = engine.chase_all(&source());
        assert_eq!(solutions[0].total_len(), 1);
        assert_eq!(
            solutions[0].to_tuples(),
            chase_one_canonical(&source(), &unconditional)
                .unwrap()
                .to_tuples()
        );
    }

    #[test]
    fn scan_only_candidate_sets_build_no_column_index() {
        // Single all-variable-atom bodies can never probe: the engine must
        // not force an index build the naive path would also skip.
        let flat = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0), v(1)])],
            vec![Atom::new(RelId(0), vec![v(1), v(0), v(2)])],
            vec![],
        );
        let src = source();
        assert!(src.index_stamp(RelId(0)).is_none(), "fresh instance");
        let engine = ChaseEngine::new(std::slice::from_ref(&flat)).unwrap();
        let solutions = engine.chase_all(&src);
        assert_eq!(solutions[0].total_len(), 2);
        assert!(
            src.index_stamp(RelId(0)).is_none(),
            "scan-only chase must leave the index unbuilt"
        );
    }

    #[test]
    fn engine_is_reusable_across_sources() {
        let tgds = [theta1(), theta3()];
        let engine = ChaseEngine::new(&tgds).unwrap();
        let a = engine.chase_all(&source());
        let mut bigger = source();
        bigger.insert_ground(RelId(0), &["Web", "7"]);
        let b = engine.chase_all(&bigger);
        assert!(b[0].total_len() > a[0].total_len());
        for (k, tgd) in b.iter().zip(&tgds) {
            assert_eq!(
                k.to_tuples(),
                chase_one_canonical(&bigger, tgd).unwrap().to_tuples()
            );
        }
    }
}

//! Cores of universal solutions.
//!
//! The canonical universal solution `K_M` produced by the oblivious chase
//! is generally *not minimal*: different firings can produce tuples that
//! are homomorphically redundant (e.g. `T(a, N1)` and `T(a, N2)` where one
//! retracts onto the other). The **core** is the smallest subinstance that
//! `K_M` maps into homomorphically — the canonical minimal universal
//! solution of data exchange (Fagin, Kolaitis, Popa).
//!
//! Cores matter for selection: redundant null-tuples inflate the error
//! term of objective Eq. (9) without adding explanatory power, so
//! evaluating `creates` on the core is a natural ablation (the default
//! pipeline follows the paper and uses the canonical solution as-is).
//!
//! The computation here is the classic greedy retraction: repeatedly try
//! to drop one null-containing tuple and check that the full instance
//! still maps into the remainder (constants fixed). Exponential in the
//! worst case like all core computations, but the *blocks* (groups of
//! tuples connected by shared nulls) of chase outputs are tiny — one tgd
//! firing each — so the homomorphism checks stay local in practice.

use cms_data::{find_homomorphism, Instance, Tuple};

/// Compute the core of a (null-containing) instance.
///
/// Ground tuples are always in the core (homomorphisms fix constants).
/// Returns an instance that is homomorphically equivalent to the input and
/// minimal under tuple removal.
pub fn core_of(instance: &Instance) -> Instance {
    let mut current: Vec<Tuple> = instance
        .iter_all()
        .map(|(rel, row)| Tuple::new(rel, row.to_vec()))
        .collect();

    // Try dropping null-containing tuples, largest-null-count first (those
    // are the most likely to be redundant padding).
    loop {
        let mut progress = false;
        let mut order: Vec<usize> = (0..current.len())
            .filter(|&i| !current[i].is_ground())
            .collect();
        order.sort_by_key(|&i| std::cmp::Reverse(current[i].null_positions().count()));

        for &drop in &order {
            let candidate: Instance = current
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != drop)
                .map(|(_, t)| t.clone())
                .collect();
            // A retraction exists iff the full instance maps into the
            // candidate subinstance.
            let full: Instance = current.iter().cloned().collect();
            if find_homomorphism(&full, &candidate).is_some() {
                current.remove(drop);
                progress = true;
                break; // indices shifted; restart the scan
            }
        }
        if !progress {
            break;
        }
    }
    current.into_iter().collect()
}

/// True iff `instance` equals its own core (no proper retraction exists).
pub fn is_core(instance: &Instance) -> bool {
    core_of(instance).total_len() == instance.total_len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_data::{hom_equivalent, NullId, RelId, Value};

    fn c(s: &str) -> Value {
        Value::constant(s)
    }

    fn n(id: u32) -> Value {
        Value::Null(NullId(id))
    }

    #[test]
    fn ground_instances_are_cores() {
        let mut inst = Instance::new();
        inst.insert_ground(RelId(0), &["a", "b"]);
        inst.insert_ground(RelId(0), &["c", "d"]);
        let core = core_of(&inst);
        assert_eq!(core.total_len(), 2);
        assert!(is_core(&inst));
    }

    #[test]
    fn redundant_null_tuple_is_dropped() {
        // T(a, N0) is subsumed by T(a, b): map N0 ↦ b.
        let mut inst = Instance::new();
        inst.insert(Tuple::new(RelId(0), vec![c("a"), c("b")]));
        inst.insert(Tuple::new(RelId(0), vec![c("a"), n(0)]));
        let core = core_of(&inst);
        assert_eq!(core.total_len(), 1);
        assert!(core.contains(RelId(0), &[c("a"), c("b")]));
        assert!(hom_equivalent(&core, &inst));
    }

    #[test]
    fn duplicate_patterns_collapse() {
        // Two firings producing T(a, N0) and T(a, N1): core keeps one.
        let mut inst = Instance::new();
        inst.insert(Tuple::new(RelId(0), vec![c("a"), n(0)]));
        inst.insert(Tuple::new(RelId(0), vec![c("a"), n(1)]));
        let core = core_of(&inst);
        assert_eq!(core.total_len(), 1);
        assert!(hom_equivalent(&core, &inst));
    }

    #[test]
    fn linked_blocks_are_kept_together() {
        // T(a, N0), U(N0, b): N0 is corroborated — neither tuple drops.
        let mut inst = Instance::new();
        inst.insert(Tuple::new(RelId(0), vec![c("a"), n(0)]));
        inst.insert(Tuple::new(RelId(1), vec![n(0), c("b")]));
        let core = core_of(&inst);
        assert_eq!(core.total_len(), 2);
        assert!(is_core(&inst));
    }

    #[test]
    fn block_subsumed_by_ground_block_drops_entirely() {
        // {T(a, N0), U(N0, b)} retracts onto {T(a, k), U(k, b)}.
        let mut inst = Instance::new();
        inst.insert(Tuple::new(RelId(0), vec![c("a"), n(0)]));
        inst.insert(Tuple::new(RelId(1), vec![n(0), c("b")]));
        inst.insert(Tuple::new(RelId(0), vec![c("a"), c("k")]));
        inst.insert(Tuple::new(RelId(1), vec![c("k"), c("b")]));
        let core = core_of(&inst);
        assert_eq!(core.total_len(), 2);
        assert!(core.contains(RelId(0), &[c("a"), c("k")]));
        assert!(core.contains(RelId(1), &[c("k"), c("b")]));
    }

    #[test]
    fn partially_subsumed_block_keeps_the_general_tuple() {
        // T(N0, N1) retracts onto T(a, N2)? No — T(a, N2) is *more*
        // specific in position 0; but T(N0, N1) maps onto it (N0↦a).
        let mut inst = Instance::new();
        inst.insert(Tuple::new(RelId(0), vec![n(0), n(1)]));
        inst.insert(Tuple::new(RelId(0), vec![c("a"), n(2)]));
        let core = core_of(&inst);
        // The fully-null tuple folds into the more specific one.
        assert_eq!(core.total_len(), 1);
        assert!(hom_equivalent(&core, &inst));
    }

    #[test]
    fn chase_output_core_on_running_example() {
        // θ1 fired twice with distinct data: no redundancy, chase output
        // is already a core.
        use crate::atom::Atom;
        use crate::term::{Term, VarId};
        use crate::StTgd;
        let v = |i: u32| Term::Var(VarId(i));
        let theta1 = StTgd::new(
            vec![Atom::new(RelId(0), vec![v(0), v(1)])],
            vec![Atom::new(RelId(1), vec![v(0), v(2)])],
            vec![],
        );
        let mut i = Instance::new();
        i.insert_ground(RelId(0), &["BigData", "7"]);
        i.insert_ground(RelId(0), &["ML", "9"]);
        let k = crate::chase_one(&i, &theta1);
        assert!(is_core(&k));

        // But firing a *duplicating* tgd creates redundancy the core
        // removes: body matched twice on the same first column.
        let mut i2 = Instance::new();
        i2.insert_ground(RelId(0), &["ML", "9"]);
        i2.insert_ground(RelId(0), &["ML", "8"]);
        let k2 = crate::chase_one(&i2, &theta1);
        assert_eq!(k2.total_len(), 2, "two firings, two null tuples");
        let core = core_of(&k2);
        assert_eq!(core.total_len(), 1, "they collapse in the core");
    }
}

//! Source-to-target tuple-generating dependencies (st tgds).
//!
//! An st tgd `∀x̄ φ(x̄) → ∃ȳ ψ(x̄, ȳ)` has a conjunctive body `φ` over the
//! source schema and a conjunctive head `ψ` over the target schema.
//! Variables occurring in the head but not the body are existential; a tgd
//! with no existential variables is **full**.
//!
//! `size(θ)` — the complexity term of the selection objective — is the
//! total number of atoms (body + head), matching the appendix's worked
//! example (`size(θ1) = 3`, `size(θ3) = 4` for the running example).

use crate::atom::Atom;
use crate::term::{Term, VarId};
use cms_data::{FxHashSet, Schema};
use std::fmt;

/// A source-to-target tuple-generating dependency.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct StTgd {
    /// Conjunctive body over the source schema. Must be non-empty.
    pub body: Vec<Atom>,
    /// Conjunctive head over the target schema. Must be non-empty.
    pub head: Vec<Atom>,
    /// Human-readable variable names, indexed by [`VarId`]. Purely
    /// cosmetic; may be empty (variables then print as `?n`).
    pub var_names: Vec<String>,
}

/// Validation failures for a tgd against a schema pair.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TgdError {
    /// Body or head is empty.
    EmptySide,
    /// An atom's arity does not match its relation's arity.
    ArityMismatch {
        /// True if the offending atom is in the body.
        in_body: bool,
        /// Index of the offending atom within its side.
        atom: usize,
    },
    /// An atom references a relation id outside its schema.
    UnknownRelation {
        /// True if the offending atom is in the body.
        in_body: bool,
        /// Index of the offending atom within its side.
        atom: usize,
    },
}

impl fmt::Display for TgdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgdError::EmptySide => write!(f, "tgd has an empty body or head"),
            TgdError::ArityMismatch { in_body, atom } => write!(
                f,
                "arity mismatch at {} atom {atom}",
                if *in_body { "body" } else { "head" }
            ),
            TgdError::UnknownRelation { in_body, atom } => write!(
                f,
                "unknown relation at {} atom {atom}",
                if *in_body { "body" } else { "head" }
            ),
        }
    }
}

impl std::error::Error for TgdError {}

impl StTgd {
    /// Construct a tgd; no validation (see [`StTgd::validate`]).
    pub fn new(body: Vec<Atom>, head: Vec<Atom>, var_names: Vec<String>) -> StTgd {
        StTgd {
            body,
            head,
            var_names,
        }
    }

    /// Total number of distinct variables (max id + 1 across both sides).
    pub fn num_vars(&self) -> usize {
        self.body
            .iter()
            .chain(self.head.iter())
            .flat_map(|a| a.vars())
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0)
    }

    /// The set of variables occurring in the body (universal variables).
    pub fn body_vars(&self) -> FxHashSet<VarId> {
        self.body.iter().flat_map(|a| a.vars()).collect()
    }

    /// Existential variables: occur in the head but not the body, in first
    /// head-occurrence order.
    pub fn existential_vars(&self) -> Vec<VarId> {
        let universal = self.body_vars();
        let mut seen = FxHashSet::default();
        let mut out = Vec::new();
        for v in self.head.iter().flat_map(|a| a.vars()) {
            if !universal.contains(&v) && seen.insert(v) {
                out.push(v);
            }
        }
        out
    }

    /// True iff the tgd has no existential variables.
    pub fn is_full(&self) -> bool {
        self.existential_vars().is_empty()
    }

    /// The objective's size term: number of atoms in body + head.
    pub fn size(&self) -> usize {
        self.body.len() + self.head.len()
    }

    /// Check structural well-formedness against a schema pair.
    pub fn validate(&self, source: &Schema, target: &Schema) -> Result<(), TgdError> {
        if self.body.is_empty() || self.head.is_empty() {
            return Err(TgdError::EmptySide);
        }
        for (in_body, atoms, schema) in [(true, &self.body, source), (false, &self.head, target)] {
            for (i, atom) in atoms.iter().enumerate() {
                if atom.rel.index() >= schema.len() {
                    return Err(TgdError::UnknownRelation { in_body, atom: i });
                }
                if schema.relation(atom.rel).arity() != atom.arity() {
                    return Err(TgdError::ArityMismatch { in_body, atom: i });
                }
            }
        }
        Ok(())
    }

    /// Render with relation names resolved against the schema pair and
    /// variable names where available.
    pub fn display<'a>(&'a self, source: &'a Schema, target: &'a Schema) -> TgdDisplay<'a> {
        TgdDisplay {
            tgd: self,
            source,
            target,
        }
    }

    fn term_name(&self, t: Term) -> String {
        match t {
            Term::Const(s) => format!("'{s}'"),
            Term::Var(v) => self
                .var_names
                .get(v.index())
                .filter(|n| !n.is_empty())
                .cloned()
                .unwrap_or_else(|| format!("?{}", v.0)),
        }
    }
}

/// Pretty-printer returned by [`StTgd::display`].
pub struct TgdDisplay<'a> {
    tgd: &'a StTgd,
    source: &'a Schema,
    target: &'a Schema,
}

impl fmt::Display for TgdDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let side = |f: &mut fmt::Formatter<'_>, atoms: &[Atom], schema: &Schema| -> fmt::Result {
            for (i, a) in atoms.iter().enumerate() {
                if i > 0 {
                    write!(f, " & ")?;
                }
                write!(f, "{}(", schema.rel_name(a.rel))?;
                for (j, t) in a.terms.iter().enumerate() {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", self.tgd.term_name(*t))?;
                }
                write!(f, ")")?;
            }
            Ok(())
        };
        side(f, &self.tgd.body, self.source)?;
        write!(f, " -> ")?;
        side(f, &self.tgd.head, self.target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cms_data::RelId;

    /// θ3-like tgd: proj(X,N,C) & team(C,E) -> task(X,E,O) & org(O,F)
    /// with O, F existential.
    fn theta3() -> StTgd {
        let v = |i: u32| Term::Var(VarId(i));
        StTgd::new(
            vec![
                Atom::new(RelId(0), vec![v(0), v(1), v(2)]),
                Atom::new(RelId(1), vec![v(2), v(3)]),
            ],
            vec![
                Atom::new(RelId(0), vec![v(0), v(3), v(4)]),
                Atom::new(RelId(1), vec![v(4), v(5)]),
            ],
            vec!["X", "N", "C", "E", "O", "F"]
                .into_iter()
                .map(String::from)
                .collect(),
        )
    }

    #[test]
    fn existentials_and_fullness() {
        let t = theta3();
        assert_eq!(t.existential_vars(), vec![VarId(4), VarId(5)]);
        assert!(!t.is_full());
        assert_eq!(t.size(), 4);
        assert_eq!(t.num_vars(), 6);

        let full = StTgd::new(
            vec![Atom::new(RelId(0), vec![Term::Var(VarId(0))])],
            vec![Atom::new(RelId(0), vec![Term::Var(VarId(0))])],
            vec![],
        );
        assert!(full.is_full());
        assert_eq!(full.size(), 2);
    }

    #[test]
    fn validate_catches_arity_and_unknown_relation() {
        let mut src = Schema::new("s");
        src.add_relation("proj", &["name", "code", "leader"]);
        src.add_relation("team", &["pcode", "emp"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("task", &["pname", "emp", "org"]);
        tgt.add_relation("org", &["oid", "firm"]);

        let t = theta3();
        assert_eq!(t.validate(&src, &tgt), Ok(()));

        let mut bad = theta3();
        bad.head[0].terms.pop();
        assert_eq!(
            bad.validate(&src, &tgt),
            Err(TgdError::ArityMismatch {
                in_body: false,
                atom: 0
            })
        );

        let mut unk = theta3();
        unk.body[1].rel = RelId(9);
        assert_eq!(
            unk.validate(&src, &tgt),
            Err(TgdError::UnknownRelation {
                in_body: true,
                atom: 1
            })
        );

        let empty = StTgd::new(vec![], theta3().head, vec![]);
        assert_eq!(empty.validate(&src, &tgt), Err(TgdError::EmptySide));
    }

    #[test]
    fn display_uses_names() {
        let mut src = Schema::new("s");
        src.add_relation("proj", &["name", "code", "leader"]);
        src.add_relation("team", &["pcode", "emp"]);
        let mut tgt = Schema::new("t");
        tgt.add_relation("task", &["pname", "emp", "org"]);
        tgt.add_relation("org", &["oid", "firm"]);
        let text = theta3().display(&src, &tgt).to_string();
        assert_eq!(
            text,
            "proj(X, N, C) & team(C, E) -> task(X, E, O) & org(O, F)"
        );
    }
}

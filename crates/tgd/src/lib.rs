//! `cms-tgd` — source-to-target tuple-generating dependencies and the
//! chase.
//!
//! This crate is the data-exchange engine the paper builds on: it defines
//! st tgds (the mapping language), conjunctive-query matching over
//! instances, the oblivious chase producing canonical universal solutions
//! `K_M`, a **batched chase engine** that interns candidate bodies into a
//! shared body-prefix trie and evaluates each join prefix once for a whole
//! candidate set ([`ChaseEngine`]), structural normalization for
//! recognizing the gold mapping inside the candidate set, a small text
//! parser for examples, and a programmatic builder for the generators.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod atom;
pub mod builder;
pub mod chase;
pub mod chase_stats;
pub mod core;
pub mod dependency;
pub mod engine;
pub mod matcher;
pub mod normalize;
pub mod parser;
pub mod term;
pub mod trie;

pub use atom::Atom;
pub use builder::{cst, var, Arg, TgdBuilder};
pub use chase::{
    chase, chase_canonical, chase_into, chase_one, chase_one_canonical, prepare_plans, try_chase,
    try_chase_into, try_chase_one, ChaseError, FirePlan,
};
pub use chase_stats::ChaseStats;
pub use core::{core_of, is_core};
pub use dependency::{StTgd, TgdError};
pub use engine::ChaseEngine;
pub use matcher::{has_match, match_conjunction, Binding};
pub use normalize::{canonical_key, dedup_tgds, equivalent};
pub use parser::{parse_tgd, ParseError};
pub use term::{Term, VarId};
pub use trie::{canonical_body, BodyTrie, CanonAtom, CanonTerm};
